#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>

#include "common/rng.h"
#include "data/synth.h"
#include "feature_store/feature_store.h"
#include "gtest/gtest.h"
#include "core/model_zoo.h"
#include "net/client.h"
#include "net/epoll_server.h"
#include "net/router.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/serving_engine.h"
#include "feature_store/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

namespace basm::net {
namespace {

// ------------------------------------------------------------- wire codec --

RpcRequest SampleRequest() {
  RpcRequest request;
  request.sequence = 7;
  request.request.user_id = 42;
  request.request.hour = 12;
  request.request.weekday = 3;
  request.request.city = 2;
  request.request.day = 5;
  request.request.request_id = 901;
  request.deadline_micros = 250000;
  request.candidates = {10, 20, 30, 40};
  return request;
}

RpcResponse SampleResponse() {
  RpcResponse response;
  response.sequence = 7;
  response.code = StatusCode::kOk;
  response.replica = 1;
  response.model_version = 9;
  response.degraded = true;
  response.message = "fine";
  for (int i = 0; i < 3; ++i) {
    serving::RankedItem item;
    item.item_id = 100 + i;
    item.score = 0.5f - 0.1f * static_cast<float>(i);
    item.position = i;
    response.slate.push_back(item);
  }
  return response;
}

/// Splits a full frame into (validated header, payload bytes).
void SplitFrame(const std::vector<uint8_t>& frame, FrameHeader* header,
                std::vector<uint8_t>* payload) {
  ASSERT_GE(frame.size(), kFrameHeaderBytes);
  ASSERT_TRUE(DecodeFrameHeader(frame.data(), frame.size(), header).ok());
  payload->assign(frame.begin() + kFrameHeaderBytes, frame.end());
  ASSERT_TRUE(
      VerifyPayload(*header, payload->data(), payload->size()).ok());
}

TEST(NetTest, RequestFrameRoundTrips) {
  RpcRequest request = SampleRequest();
  std::vector<uint8_t> frame = EncodeRequestFrame(request);

  FrameHeader header;
  std::vector<uint8_t> payload;
  SplitFrame(frame, &header, &payload);
  EXPECT_EQ(header.type, FrameType::kRequest);
  EXPECT_EQ(header.version, kWireVersion);

  RpcRequest decoded;
  ASSERT_TRUE(
      DecodeRequestPayload(payload.data(), payload.size(), &decoded).ok());
  EXPECT_EQ(decoded.sequence, request.sequence);
  EXPECT_EQ(decoded.request.user_id, request.request.user_id);
  EXPECT_EQ(decoded.request.hour, request.request.hour);
  EXPECT_EQ(decoded.request.weekday, request.request.weekday);
  EXPECT_EQ(decoded.request.city, request.request.city);
  EXPECT_EQ(decoded.request.day, request.request.day);
  EXPECT_EQ(decoded.request.request_id, request.request.request_id);
  EXPECT_EQ(decoded.deadline_micros, request.deadline_micros);
  EXPECT_EQ(decoded.candidates, request.candidates);
}

TEST(NetTest, ResponseFrameRoundTrips) {
  RpcResponse response = SampleResponse();
  std::vector<uint8_t> frame = EncodeResponseFrame(response);

  FrameHeader header;
  std::vector<uint8_t> payload;
  SplitFrame(frame, &header, &payload);
  EXPECT_EQ(header.type, FrameType::kResponse);

  RpcResponse decoded;
  ASSERT_TRUE(
      DecodeResponsePayload(payload.data(), payload.size(), &decoded).ok());
  EXPECT_EQ(decoded.sequence, response.sequence);
  EXPECT_EQ(decoded.code, response.code);
  EXPECT_EQ(decoded.replica, response.replica);
  EXPECT_EQ(decoded.model_version, response.model_version);
  EXPECT_EQ(decoded.degraded, response.degraded);
  EXPECT_EQ(decoded.message, response.message);
  ASSERT_EQ(decoded.slate.size(), response.slate.size());
  for (size_t i = 0; i < decoded.slate.size(); ++i) {
    EXPECT_EQ(decoded.slate[i].item_id, response.slate[i].item_id);
    EXPECT_EQ(decoded.slate[i].score, response.slate[i].score);
    EXPECT_EQ(decoded.slate[i].position, response.slate[i].position);
  }
}

TEST(NetTest, TruncatedHeaderIsError) {
  std::vector<uint8_t> frame = EncodeRequestFrame(SampleRequest());
  FrameHeader header;
  for (size_t len = 0; len < kFrameHeaderBytes; ++len) {
    Status s = DecodeFrameHeader(frame.data(), len, &header);
    EXPECT_FALSE(s.ok()) << "header of " << len << " bytes must not decode";
    EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  }
}

TEST(NetTest, MalformedHeaderCorpusIsRejected) {
  const std::vector<uint8_t> good = EncodeRequestFrame(SampleRequest());
  FrameHeader header;

  struct Mutation {
    const char* name;
    size_t offset;
    uint8_t value;
  };
  const Mutation corpus[] = {
      {"bad magic", 0, 0xFF},
      {"wrong version", 4, kWireVersion + 1},
      {"unknown frame type", 5, 99},
      {"nonzero reserved flag (low)", 6, 1},
      {"nonzero reserved flag (high)", 7, 0x80},
      {"oversized payload length", 11, 0xFF},  // top byte of payload_size
  };
  for (const Mutation& m : corpus) {
    std::vector<uint8_t> frame = good;
    frame[m.offset] = m.value;
    EXPECT_FALSE(DecodeFrameHeader(frame.data(), frame.size(), &header).ok())
        << m.name;
  }
}

TEST(NetTest, CorruptChecksumIsRejected) {
  std::vector<uint8_t> frame = EncodeRequestFrame(SampleRequest());
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(frame.data(), frame.size(), &header).ok());

  // Flip one payload bit: the declared checksum no longer matches.
  std::vector<uint8_t> payload(frame.begin() + kFrameHeaderBytes,
                               frame.end());
  payload[payload.size() / 2] ^= 0x01;
  Status s = VerifyPayload(header, payload.data(), payload.size());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);

  // A payload shorter than the header claims is a size mismatch.
  EXPECT_EQ(
      VerifyPayload(header, payload.data(), payload.size() - 1).code(),
      StatusCode::kOutOfRange);
}

TEST(NetTest, TruncatedPayloadNeverOverReads) {
  // Every strict prefix of a valid payload must fail cleanly — under ASan
  // this doubles as an over-read probe across all field boundaries.
  std::vector<uint8_t> req_frame = EncodeRequestFrame(SampleRequest());
  std::vector<uint8_t> req(req_frame.begin() + kFrameHeaderBytes,
                           req_frame.end());
  for (size_t len = 0; len < req.size(); ++len) {
    RpcRequest out;
    EXPECT_FALSE(DecodeRequestPayload(req.data(), len, &out).ok())
        << "request prefix of " << len << " bytes must not decode";
  }

  std::vector<uint8_t> resp_frame = EncodeResponseFrame(SampleResponse());
  std::vector<uint8_t> resp(resp_frame.begin() + kFrameHeaderBytes,
                            resp_frame.end());
  for (size_t len = 0; len < resp.size(); ++len) {
    RpcResponse out;
    EXPECT_FALSE(DecodeResponsePayload(resp.data(), len, &out).ok())
        << "response prefix of " << len << " bytes must not decode";
  }
}

TEST(NetTest, TrailingBytesAreRejected) {
  std::vector<uint8_t> frame = EncodeRequestFrame(SampleRequest());
  std::vector<uint8_t> payload(frame.begin() + kFrameHeaderBytes,
                               frame.end());
  payload.push_back(0xAB);
  RpcRequest out;
  Status s = DecodeRequestPayload(payload.data(), payload.size(), &out);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(NetTest, HostileCountsAreCappedBeforeAllocation) {
  // A request payload whose candidate count field claims 2^31 entries in a
  // tiny buffer: the cap and the bytes-present check both fire before any
  // allocation sized from the count.
  WireWriter w;
  w.PutU64(1);                      // sequence
  for (int i = 0; i < 6; ++i) w.PutI32(0);  // request fields
  w.PutI64(1000);                   // deadline
  w.PutU32(0x80000000u);            // hostile candidate count
  std::vector<uint8_t> hostile = w.Release();
  RpcRequest out;
  Status s = DecodeRequestPayload(hostile.data(), hostile.size(), &out);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);

  // Same shape at the slate: count over the cap, and a capped count whose
  // bytes are absent.
  WireWriter r;
  r.PutU64(1);      // sequence
  r.PutU8(0);       // code
  r.PutU8(0);       // degraded
  r.PutU32(0);      // replica
  r.PutU64(0);      // model version
  r.PutU16(0);      // message length
  r.PutU32(kMaxWireSlate + 1);
  std::vector<uint8_t> overslate = r.Release();
  RpcResponse resp;
  EXPECT_FALSE(
      DecodeResponsePayload(overslate.data(), overslate.size(), &resp).ok());

  WireWriter t;
  t.PutU64(1);
  t.PutU8(0);
  t.PutU8(0);
  t.PutU32(0);
  t.PutU64(0);
  t.PutU16(0);
  t.PutU32(kMaxWireSlate);  // claims a full slate, provides zero bytes
  std::vector<uint8_t> starved = t.Release();
  EXPECT_FALSE(
      DecodeResponsePayload(starved.data(), starved.size(), &resp).ok());
}

TEST(NetTest, InvalidEnumBytesAreRejected) {
  RpcResponse response = SampleResponse();
  std::vector<uint8_t> frame = EncodeResponseFrame(response);
  std::vector<uint8_t> payload(frame.begin() + kFrameHeaderBytes,
                               frame.end());
  RpcResponse out;

  std::vector<uint8_t> bad_code = payload;
  bad_code[8] = 0xEE;  // status code byte
  EXPECT_FALSE(
      DecodeResponsePayload(bad_code.data(), bad_code.size(), &out).ok());

  std::vector<uint8_t> bad_flag = payload;
  bad_flag[9] = 2;  // degraded flag byte
  EXPECT_FALSE(
      DecodeResponsePayload(bad_flag.data(), bad_flag.size(), &out).ok());
}

TEST(NetTest, WireReaderIsBoundsChecked) {
  const uint8_t bytes[3] = {1, 2, 3};
  WireReader r(bytes, sizeof(bytes));
  uint32_t v32 = 0;
  EXPECT_EQ(r.ReadU32(&v32).code(), StatusCode::kOutOfRange);
  uint8_t v8 = 0;
  EXPECT_TRUE(r.ReadU8(&v8).ok());
  EXPECT_EQ(v8, 1);
  uint16_t v16 = 0;
  EXPECT_TRUE(r.ReadU16(&v16).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(r.ReadU8(&v8).code(), StatusCode::kOutOfRange);
}

// ----------------------------------------------------------------- router --

TEST(NetTest, RouterPinsUsersDeterministically) {
  RouterConfig config;
  Router router(4, config);
  for (int32_t user = 0; user < 200; ++user) {
    int32_t home = router.HomeReplica(user);
    ASSERT_GE(home, 0);
    ASSERT_LT(home, 4);
    for (int i = 0; i < 3; ++i) {
      StatusOr<int32_t> routed = router.Route(user);
      ASSERT_TRUE(routed.ok());
      EXPECT_EQ(routed.value(), home) << "user " << user;
    }
  }
  EXPECT_EQ(router.stats().failovers, 0);
}

TEST(NetTest, RouterSpreadsUsersAcrossReplicas) {
  RouterConfig config;
  Router router(4, config);
  std::vector<int64_t> share(4, 0);
  const int32_t kUsers = 4000;
  for (int32_t user = 0; user < kUsers; ++user) {
    ++share[router.HomeReplica(user)];
  }
  for (int32_t r = 0; r < 4; ++r) {
    // With 64 virtual nodes the shard shares stay within a loose band of
    // the fair 25% — the balance contract, not a tight statistical test.
    EXPECT_GT(share[r], kUsers / 10) << "replica " << r << " starved";
    EXPECT_LT(share[r], kUsers / 2) << "replica " << r << " overloaded";
  }
}

TEST(NetTest, FailoverMovesOnlyTheDeadReplicasArc) {
  RouterConfig config;
  Router router(3, config);
  const int32_t kUsers = 600;
  std::vector<int32_t> home(kUsers);
  for (int32_t user = 0; user < kUsers; ++user) {
    home[user] = router.HomeReplica(user);
  }

  router.MarkDown(1);
  for (int32_t user = 0; user < kUsers; ++user) {
    StatusOr<int32_t> routed = router.Route(user);
    ASSERT_TRUE(routed.ok());
    if (home[user] != 1) {
      // Users of healthy replicas keep their pins during the failover.
      EXPECT_EQ(routed.value(), home[user]) << "user " << user << " re-homed";
    } else {
      EXPECT_NE(routed.value(), 1) << "user " << user << " sent to the dead "
                                      "replica";
    }
  }
  EXPECT_GT(router.stats().failovers, 0);

  // Recovery restores the original pins exactly.
  router.MarkUp(1);
  for (int32_t user = 0; user < kUsers; ++user) {
    StatusOr<int32_t> routed = router.Route(user);
    ASSERT_TRUE(routed.ok());
    EXPECT_EQ(routed.value(), home[user]);
  }
}

TEST(NetTest, BreakerTripsReplicaOutOfTheRing) {
  RouterConfig config;
  config.breaker.failure_threshold = 3;
  config.breaker.open_micros = 30000;
  config.breaker.close_after_successes = 1;
  Router router(2, config);

  // Find a user homed on replica 0.
  int32_t user = 0;
  while (router.HomeReplica(user) != 0) ++user;

  bool tripped = false;
  for (int i = 0; i < 3; ++i) tripped = router.ReportFailure(0);
  EXPECT_TRUE(tripped);
  EXPECT_EQ(router.BreakerStats(0).opens, 1);

  StatusOr<int32_t> routed = router.Route(user);
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.value(), 1) << "open breaker must fail the user over";

  // After the open window a probe is admitted; its success closes the
  // breaker and the user's pin comes back.
  std::this_thread::sleep_for(std::chrono::microseconds(40000));
  routed = router.Route(user);
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.value(), 0);
  router.ReportSuccess(0);
  routed = router.Route(user);
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.value(), 0);
}

TEST(NetTest, AllReplicasDownIsUnroutable) {
  RouterConfig config;
  Router router(2, config);
  router.MarkDown(0);
  router.MarkDown(1);
  StatusOr<int32_t> routed = router.Route(5);
  ASSERT_FALSE(routed.ok());
  EXPECT_EQ(routed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(router.stats().unroutable, 1);
}

// ------------------------------------------------------- loopback serving --

data::SynthConfig NetWorldConfig() {
  data::SynthConfig c = data::SynthConfig::Eleme();
  c.num_users = 200;
  c.num_items = 180;
  c.num_cities = 4;
  c.seq_len = 6;
  return c;
}

/// Shared world/model fixture (expensive) with per-test replicas/server.
class NetServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new data::World(NetWorldConfig());
    features_ = new feature_store::FeatureServer(*world_, 6, 11);
    store_ = new feature_store::FeatureStore(features_);
    recall_ = new serving::RecallIndex(*world_);
    model_ = core::CreateModel(core::ModelKind::kDin, world_->schema(), 13)
                 .release();
    model_->SetTraining(false);
    pipeline_ = new serving::Pipeline(*world_, store_, recall_, model_,
                                      /*recall_size=*/16, /*expose_k=*/6);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete model_;
    delete recall_;
    delete store_;
    delete features_;
    delete world_;
  }

  /// Builds `n` independent replicas on the shared pipeline.
  std::vector<std::unique_ptr<runtime::ServingEngine>> MakeReplicas(
      int32_t n, runtime::EngineConfig config = {}) {
    std::vector<std::unique_ptr<runtime::ServingEngine>> replicas;
    for (int32_t i = 0; i < n; ++i) {
      config.seed = 0xE57E + static_cast<uint64_t>(i);
      replicas.push_back(
          std::make_unique<runtime::ServingEngine>(pipeline_, config));
    }
    return replicas;
  }

  static std::vector<runtime::ServingEngine*> Borrow(
      const std::vector<std::unique_ptr<runtime::ServingEngine>>& replicas) {
    std::vector<runtime::ServingEngine*> out;
    for (const auto& r : replicas) out.push_back(r.get());
    return out;
  }

  static data::World* world_;
  static feature_store::FeatureServer* features_;
  static feature_store::FeatureStore* store_;
  static serving::RecallIndex* recall_;
  static models::CtrModel* model_;
  static serving::Pipeline* pipeline_;
};

data::World* NetServingTest::world_ = nullptr;
feature_store::FeatureServer* NetServingTest::features_ = nullptr;
feature_store::FeatureStore* NetServingTest::store_ = nullptr;
serving::RecallIndex* NetServingTest::recall_ = nullptr;
models::CtrModel* NetServingTest::model_ = nullptr;
serving::Pipeline* NetServingTest::pipeline_ = nullptr;

TEST_F(NetServingTest, LoopbackCallRoundTrips) {
  auto replicas = MakeReplicas(1);
  Router router(1, RouterConfig{});
  RpcServer server(Borrow(replicas), &router, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  StatusOr<RpcClient> client = RpcClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  RpcRequest request;
  request.request.user_id = 3;
  request.request.hour = 12;
  request.request.city = world_->user(3).city;
  request.request.request_id = 1;
  StatusOr<RpcResponse> response = client.value().Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().code, StatusCode::kOk);
  EXPECT_EQ(response.value().replica, 0u);
  EXPECT_EQ(static_cast<int32_t>(response.value().slate.size()),
            pipeline_->expose_k());
  // Positions are assigned after ranking, scores descend.
  for (size_t i = 0; i < response.value().slate.size(); ++i) {
    EXPECT_EQ(response.value().slate[i].position, static_cast<int32_t>(i));
    if (i > 0) {
      EXPECT_LE(response.value().slate[i].score,
                response.value().slate[i - 1].score);
    }
  }

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.frames_received, 1);
  EXPECT_EQ(stats.responses_sent, 1);
  server.Stop();
}

TEST_F(NetServingTest, GarbageFrameGetsErrorResponseAndClose) {
  auto replicas = MakeReplicas(1);
  Router router(1, RouterConfig{});
  RpcServer server(Borrow(replicas), &router, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  StatusOr<TcpConnection> raw =
      TcpConnection::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(raw.ok());

  // A correct header whose payload is corrupt: the server answers with a
  // wire error response, then closes (framing is no longer trustworthy).
  RpcRequest request = SampleRequest();
  std::vector<uint8_t> frame = EncodeRequestFrame(request);
  frame.back() ^= 0x40;  // corrupt the payload, not the header
  ASSERT_TRUE(raw.value().WriteAll(frame.data(), frame.size()).ok());

  uint8_t header_bytes[kFrameHeaderBytes];
  ASSERT_TRUE(raw.value().ReadAll(header_bytes, kFrameHeaderBytes).ok());
  FrameHeader header;
  ASSERT_TRUE(
      DecodeFrameHeader(header_bytes, kFrameHeaderBytes, &header).ok());
  ASSERT_EQ(header.type, FrameType::kResponse);
  std::vector<uint8_t> payload(header.payload_size);
  ASSERT_TRUE(raw.value().ReadAll(payload.data(), payload.size()).ok());
  ASSERT_TRUE(VerifyPayload(header, payload.data(), payload.size()).ok());
  RpcResponse response;
  ASSERT_TRUE(
      DecodeResponsePayload(payload.data(), payload.size(), &response).ok());
  EXPECT_NE(response.code, StatusCode::kOk);
  EXPECT_EQ(response.replica, kNoReplica);

  // The connection is closed after the error: the next read sees EOF.
  uint8_t byte = 0;
  EXPECT_FALSE(raw.value().ReadAll(&byte, 1).ok());
  EXPECT_GE(server.stats().decode_errors, 1);
  server.Stop();
}

TEST_F(NetServingTest, ConsistentHashKeepsUsersPinnedAcrossTheWire) {
  auto replicas = MakeReplicas(3);
  Router router(3, RouterConfig{});
  ServerConfig server_config;
  server_config.io_threads = 6;
  RpcServer server(Borrow(replicas), &router, server_config);
  ASSERT_TRUE(server.Start().ok());

  FleetConfig fleet_config;
  fleet_config.num_clients = 4;
  fleet_config.num_requests = 300;
  ClientFleet fleet(*world_, fleet_config);
  StatusOr<FleetReport> report = fleet.Run("127.0.0.1", server.port());
  ASSERT_TRUE(report.ok());

  EXPECT_EQ(report.value().sent, 300);
  EXPECT_EQ(report.value().ok, 300);
  EXPECT_EQ(report.value().transport_errors, 0);
  // The pinning contract over the wire: no user ever answered by two
  // different replicas while all replicas stay healthy.
  EXPECT_EQ(report.value().rehomed_users, 0);
  // Zipf users over 3 shards: more than one replica does real work.
  int32_t active = 0;
  for (int64_t ok : report.value().per_replica_ok) active += ok > 0 ? 1 : 0;
  EXPECT_GE(active, 2);
  server.Stop();
}

TEST_F(NetServingTest, KilledReplicaTripsBreakerAndFailsOverToSurvivors) {
  RouterConfig router_config;
  router_config.breaker.failure_threshold = 3;
  router_config.breaker.open_micros = 60'000'000;  // stays open for the test
  auto replicas = MakeReplicas(3);
  Router router(3, router_config);
  RpcServer server(Borrow(replicas), &router, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  FleetConfig fleet_config;
  fleet_config.num_clients = 4;
  fleet_config.num_requests = 200;
  ClientFleet fleet(*world_, fleet_config);

  // Phase 1: healthy baseline, pins established.
  StatusOr<FleetReport> baseline = fleet.Run("127.0.0.1", server.port());
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline.value().ok, 200);
  ASSERT_EQ(baseline.value().rehomed_users, 0);
  ASSERT_GE(baseline.value().per_replica_ok.size(), 2u);
  ASSERT_GT(baseline.value().per_replica_ok[1], 0)
      << "no traffic on the replica the test is about to kill";

  // Kill replica 1 (engine shut down; the server finds out on submit).
  replicas[1]->Shutdown();

  // Phase 2: every request must still be answered — the dead replica's
  // submits fail over to survivors, its breaker opens, and only its users
  // re-home.
  StatusOr<FleetReport> failover = fleet.Run("127.0.0.1", server.port());
  ASSERT_TRUE(failover.ok());
  const FleetReport& r = failover.value();
  EXPECT_EQ(r.sent, 200);
  // The acceptance bar: >= 99% of requests OK or degraded despite a dead
  // replica (here: all of them — failover is transparent).
  EXPECT_GE(r.ok, (r.sent * 99) / 100);
  EXPECT_GT(r.rehomed_users, 0) << "the dead replica's users must re-home";
  if (r.per_replica_ok.size() > 1) {
    EXPECT_EQ(r.per_replica_ok[1], 0) << "dead replica answered a request";
  }
  EXPECT_GE(router.BreakerStats(1).opens, 1);
  EXPECT_GT(server.stats().failover_retries, 0);

  // Users homed on survivors never moved (the fleet tracks pins across
  // phases): re-homes are bounded by the dead replica's phase-1 traffic.
  EXPECT_LE(r.rehomed_users, baseline.value().per_replica_ok[1]);
  server.Stop();
}

TEST_F(NetServingTest, OverloadShedsInsteadOfCollapsing) {
  runtime::EngineConfig engine_config;
  engine_config.num_workers = 1;
  engine_config.queue_capacity = 4;
  engine_config.default_deadline_micros = 2'000'000;
  auto replicas = MakeReplicas(1, engine_config);
  Router router(1, RouterConfig{});
  ServerConfig server_config;
  server_config.io_threads = 16;
  server_config.shed_queue_fraction = 0.75;
  RpcServer server(Borrow(replicas), &router, server_config);
  ASSERT_TRUE(server.Start().ok());

  // 16 closed-loop clients against a single worker with a 4-deep queue:
  // far past saturation. The contract is graceful: accepted requests
  // complete within their deadline, the rest are shed with UNAVAILABLE,
  // and nothing errors or wedges.
  FleetConfig fleet_config;
  fleet_config.num_clients = 16;
  fleet_config.num_requests = 320;
  fleet_config.deadline_micros = 2'000'000;
  ClientFleet fleet(*world_, fleet_config);
  StatusOr<FleetReport> report = fleet.Run("127.0.0.1", server.port());
  ASSERT_TRUE(report.ok());

  const FleetReport& r = report.value();
  EXPECT_EQ(r.sent, 320);
  EXPECT_EQ(r.transport_errors, 0);
  EXPECT_GT(r.ok, 0) << "overload must not starve everyone";
  EXPECT_GT(r.shed, 0) << "2x overload with a 4-deep queue must shed";
  EXPECT_EQ(r.ok + r.shed + r.failed, r.sent);
  // Accepted-request latency stays bounded by the deadline: admission
  // control kept the queue from growing into the deadline.
  EXPECT_LT(r.p99_micros, 2'000'000.0);
  EXPECT_GT(server.stats().shed, 0);
  server.Stop();
}

TEST_F(NetServingTest, ServerStopsCleanlyWithConnectedClients) {
  auto replicas = MakeReplicas(1);
  Router router(1, RouterConfig{});
  RpcServer server(Borrow(replicas), &router, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  StatusOr<RpcClient> client = RpcClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  RpcRequest request;
  request.request.user_id = 1;
  request.request.city = world_->user(1).city;
  ASSERT_TRUE(client.value().Call(request).ok());

  // Stop with the connection still open: handler loops notice the stop
  // flag and exit; Stop() joins everything without a hang.
  server.Stop();
  server.Stop();  // idempotent
}

// ------------------------------------------------- epoll event-loop tier --

/// Reads one full response frame off a raw (blocking) connection.
StatusOr<RpcResponse> ReadOneResponse(TcpConnection& conn) {
  uint8_t header_bytes[kFrameHeaderBytes];
  BASM_RETURN_IF_ERROR(conn.ReadAll(header_bytes, kFrameHeaderBytes));
  FrameHeader header;
  BASM_RETURN_IF_ERROR(
      DecodeFrameHeader(header_bytes, kFrameHeaderBytes, &header));
  if (header.type != FrameType::kResponse) {
    return Status::InvalidArgument("expected a response frame");
  }
  std::vector<uint8_t> payload(header.payload_size);
  BASM_RETURN_IF_ERROR(conn.ReadAll(payload.data(), payload.size()));
  BASM_RETURN_IF_ERROR(VerifyPayload(header, payload.data(), payload.size()));
  RpcResponse response;
  BASM_RETURN_IF_ERROR(
      DecodeResponsePayload(payload.data(), payload.size(), &response));
  return response;
}

TEST_F(NetServingTest, EpollLoopbackCallRoundTrips) {
  auto replicas = MakeReplicas(1);
  Router router(1, RouterConfig{});
  EpollRpcServer server(Borrow(replicas), &router, EpollServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  StatusOr<RpcClient> client = RpcClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  RpcRequest request;
  request.request.user_id = 3;
  request.request.hour = 12;
  request.request.city = world_->user(3).city;
  request.request.request_id = 1;
  StatusOr<RpcResponse> response = client.value().Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().code, StatusCode::kOk);
  EXPECT_EQ(response.value().replica, 0u);
  EXPECT_EQ(static_cast<int32_t>(response.value().slate.size()),
            pipeline_->expose_k());
  for (size_t i = 0; i < response.value().slate.size(); ++i) {
    EXPECT_EQ(response.value().slate[i].position, static_cast<int32_t>(i));
  }

  EpollServerStats stats = server.stats();
  EXPECT_EQ(stats.core.connections_accepted, 1);
  EXPECT_EQ(stats.core.frames_received, 1);
  EXPECT_EQ(stats.core.responses_sent, 1);
  server.Stop();
}

TEST_F(NetServingTest, EpollMalformedFrameCorpusRejected) {
  // The same malformed-header corpus the codec tests run, replayed against
  // the live epoll frontend: every mutation must produce a wire error
  // response (sequence 0, no replica) followed by a close — identical to
  // the blocking server's contract.
  auto replicas = MakeReplicas(1);
  Router router(1, RouterConfig{});
  EpollRpcServer server(Borrow(replicas), &router, EpollServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  const std::vector<uint8_t> good = EncodeRequestFrame(SampleRequest());
  struct Mutation {
    const char* name;
    size_t offset;
    uint8_t value;
  };
  const Mutation corpus[] = {
      {"bad magic", 0, 0xFF},
      {"wrong version", 4, kWireVersion + 1},
      {"unknown frame type", 5, 99},
      {"nonzero reserved flag (low)", 6, 1},
      {"nonzero reserved flag (high)", 7, 0x80},
      {"oversized payload length", 11, 0xFF},
  };
  int64_t expected_errors = 0;
  for (const Mutation& m : corpus) {
    SCOPED_TRACE(m.name);
    std::vector<uint8_t> frame = good;
    frame[m.offset] = m.value;

    StatusOr<TcpConnection> raw =
        TcpConnection::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(raw.ok());
    ASSERT_TRUE(raw.value().WriteAll(frame.data(), frame.size()).ok());

    StatusOr<RpcResponse> response = ReadOneResponse(raw.value());
    ASSERT_TRUE(response.ok());
    EXPECT_NE(response.value().code, StatusCode::kOk);
    EXPECT_EQ(response.value().sequence, 0u);
    EXPECT_EQ(response.value().replica, kNoReplica);

    // Closed after the error: next read sees EOF, not a hang.
    uint8_t byte = 0;
    EXPECT_FALSE(raw.value().ReadAll(&byte, 1).ok());
    ++expected_errors;
  }

  // Corrupt payload checksum behind a valid header: same contract.
  {
    SCOPED_TRACE("corrupt checksum");
    std::vector<uint8_t> frame = good;
    frame.back() ^= 0x40;
    StatusOr<TcpConnection> raw =
        TcpConnection::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(raw.ok());
    ASSERT_TRUE(raw.value().WriteAll(frame.data(), frame.size()).ok());
    StatusOr<RpcResponse> response = ReadOneResponse(raw.value());
    ASSERT_TRUE(response.ok());
    EXPECT_NE(response.value().code, StatusCode::kOk);
    uint8_t byte = 0;
    EXPECT_FALSE(raw.value().ReadAll(&byte, 1).ok());
    ++expected_errors;
  }

  EXPECT_EQ(server.stats().core.decode_errors, expected_errors);
  server.Stop();
}

TEST_F(NetServingTest, EpollPipelinedOutOfOrderMatchesSerialSlates) {
  // The ISSUE acceptance bar: slates served through the pipelined
  // out-of-order path are bit-identical to the serial blocking path. Same
  // deterministic model, two transports; any divergence is a frontend bug.
  constexpr int kRequests = 24;
  std::vector<RpcRequest> requests;
  for (int i = 0; i < kRequests; ++i) {
    RpcRequest r;
    r.request.user_id = (i * 7) % NetWorldConfig().num_users;
    r.request.hour = 11 + (i % 3);
    r.request.weekday = i % 7;
    r.request.city = world_->user(r.request.user_id).city;
    r.request.request_id = 1000 + i;
    r.deadline_micros = 2'000'000;
    requests.push_back(r);
  }

  // Serial reference through the blocking thread-per-connection server.
  std::vector<std::vector<serving::RankedItem>> expected;
  {
    auto replicas = MakeReplicas(1);
    Router router(1, RouterConfig{});
    RpcServer server(Borrow(replicas), &router, ServerConfig{});
    ASSERT_TRUE(server.Start().ok());
    StatusOr<RpcClient> client =
        RpcClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    for (const RpcRequest& r : requests) {
      StatusOr<RpcResponse> response = client.value().Call(r);
      ASSERT_TRUE(response.ok());
      ASSERT_EQ(response.value().code, StatusCode::kOk);
      expected.push_back(response.value().slate);
    }
    server.Stop();
  }

  // Pipelined: the whole batch in flight at once, responses demuxed by
  // sequence in whatever order the engine completes them.
  auto replicas = MakeReplicas(1);
  Router router(1, RouterConfig{});
  EpollServerConfig config;
  config.max_in_flight_per_connection = kRequests;  // nothing sheds
  EpollRpcServer server(Borrow(replicas), &router, config);
  ASSERT_TRUE(server.Start().ok());
  StatusOr<RpcClient> client = RpcClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  std::map<uint64_t, size_t> sequence_to_index;
  for (size_t i = 0; i < requests.size(); ++i) {
    StatusOr<uint64_t> sequence = client.value().Send(requests[i]);
    ASSERT_TRUE(sequence.ok());
    sequence_to_index[sequence.value()] = i;
  }
  std::vector<std::vector<serving::RankedItem>> got(requests.size());
  std::vector<bool> seen(requests.size(), false);
  for (int i = 0; i < kRequests; ++i) {
    StatusOr<RpcResponse> response = client.value().Receive(10000);
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response.value().code, StatusCode::kOk);
    auto it = sequence_to_index.find(response.value().sequence);
    ASSERT_NE(it, sequence_to_index.end()) << "unknown sequence";
    ASSERT_FALSE(seen[it->second]) << "duplicate response";
    seen[it->second] = true;
    got[it->second] = response.value().slate;
  }

  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(got[i].size(), expected[i].size()) << "request " << i;
    for (size_t k = 0; k < got[i].size(); ++k) {
      EXPECT_EQ(got[i][k].item_id, expected[i][k].item_id)
          << "request " << i << " slot " << k;
      // Bit-identical scores, not approximately equal: both paths must run
      // the exact same scoring computation.
      EXPECT_EQ(got[i][k].score, expected[i][k].score)
          << "request " << i << " slot " << k;
      EXPECT_EQ(got[i][k].position, expected[i][k].position);
    }
  }
  server.Stop();
}

TEST_F(NetServingTest, EpollInFlightCapShedsCleanly) {
  // A greedy pipelined client bursts far past the per-connection in-flight
  // cap: the overflow is shed with UNAVAILABLE (never dropped, never
  // disconnects), accepted frames complete, and the connection stays
  // usable afterwards.
  auto replicas = MakeReplicas(1);
  Router router(1, RouterConfig{});
  EpollServerConfig config;
  config.num_loops = 1;
  config.max_in_flight_per_connection = 2;
  EpollRpcServer server(Borrow(replicas), &router, config);
  ASSERT_TRUE(server.Start().ok());

  StatusOr<TcpConnection> raw =
      TcpConnection::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(raw.ok());

  constexpr int kBurst = 32;
  std::vector<uint8_t> burst;
  for (int i = 0; i < kBurst; ++i) {
    RpcRequest r;
    r.sequence = static_cast<uint64_t>(i + 1);
    r.request.user_id = 3;
    r.request.city = world_->user(3).city;
    r.request.request_id = i;
    r.deadline_micros = 5'000'000;
    std::vector<uint8_t> frame = EncodeRequestFrame(r);
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(raw.value().WriteAll(burst.data(), burst.size()).ok());

  int64_t ok = 0, shed = 0;
  std::vector<bool> answered(kBurst + 1, false);
  for (int i = 0; i < kBurst; ++i) {
    StatusOr<RpcResponse> response = ReadOneResponse(raw.value());
    ASSERT_TRUE(response.ok()) << "response " << i;
    ASSERT_GE(response.value().sequence, 1u);
    ASSERT_LE(response.value().sequence, static_cast<uint64_t>(kBurst));
    ASSERT_FALSE(answered[response.value().sequence]) << "duplicate";
    answered[response.value().sequence] = true;
    if (response.value().code == StatusCode::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(response.value().code, StatusCode::kUnavailable);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GE(ok, 2) << "capped frames must still complete";
  EXPECT_GT(shed, 0) << "a 32-frame burst against cap 2 must shed";
  EXPECT_EQ(server.stats().shed_pipeline, shed);

  // The shed path is per-frame, not per-connection: the next lock-step
  // request on the same connection succeeds.
  RpcRequest again;
  again.sequence = 999;
  again.request.user_id = 3;
  again.request.city = world_->user(3).city;
  std::vector<uint8_t> frame = EncodeRequestFrame(again);
  ASSERT_TRUE(raw.value().WriteAll(frame.data(), frame.size()).ok());
  StatusOr<RpcResponse> response = ReadOneResponse(raw.value());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().code, StatusCode::kOk);
  EXPECT_EQ(response.value().sequence, 999u);
  server.Stop();
}

TEST_F(NetServingTest, EpollSlowReaderBackpressureNeverBlocksTheLoop) {
  // A client that writes thousands of frames and reads nothing: its output
  // backlog crosses the cap, its reads pause, and — the point of the test —
  // the single IO loop keeps serving other connections the whole time. No
  // thread ever blocks on the slow reader's socket.
  auto replicas = MakeReplicas(1);
  Router router(1, RouterConfig{});
  EpollServerConfig config;
  config.num_loops = 1;  // the slow reader and the probe share one loop
  config.send_buffer_bytes = 4096;
  config.max_output_backlog_bytes = 8192;
  EpollRpcServer server(Borrow(replicas), &router, config);
  ASSERT_TRUE(server.Start().ok());

  StatusOr<TcpConnection> slow =
      TcpConnection::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(slow.ok());
  // Clamp the slow reader's receive buffer too, so unread responses cannot
  // drain into kernel slack — the server-side backlog must actually grow.
  int rcvbuf = 4096;
  ASSERT_EQ(setsockopt(slow.value().fd(), SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                       sizeof(rcvbuf)),
            0);

  constexpr int kFrames = 2000;
  std::thread writer([&] {
    for (int i = 0; i < kFrames; ++i) {
      RpcRequest r;
      r.sequence = static_cast<uint64_t>(i + 1);
      r.request.user_id = 3;
      r.request.city = world_->user(3).city;
      r.request.request_id = i;
      r.deadline_micros = 30'000'000;
      std::vector<uint8_t> frame = EncodeRequestFrame(r);
      // Blocks once the server pauses reads and the buffers fill — that is
      // the backpressure propagating to the client, by design.
      ASSERT_TRUE(slow.value().WriteAll(frame.data(), frame.size()).ok());
    }
  });

  // Wait for the backlog to cross the cap at least once.
  bool paused = false;
  for (int i = 0; i < 2000 && !paused; ++i) {
    paused = server.stats().backpressure_pauses > 0;
    if (!paused) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(paused) << "output backlog never crossed the cap";

  // Liveness probe: a second connection on the SAME loop is served while
  // the slow reader sits paused with a full output queue.
  StatusOr<RpcClient> probe =
      RpcClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(probe.ok());
  RpcRequest ping;
  ping.request.user_id = 5;
  ping.request.city = world_->user(5).city;
  StatusOr<RpcResponse> pong = probe.value().Call(ping);
  ASSERT_TRUE(pong.ok()) << "IO loop blocked behind a slow reader";
  // The round trip is the liveness proof. The engine may legitimately shed
  // or deadline the probe while digesting the flood (sanitizer builds are
  // slow enough to hit this) — only a transport-level failure would mean
  // the loop was blocked.
  EXPECT_TRUE(pong.value().code == StatusCode::kOk ||
              pong.value().code == StatusCode::kUnavailable ||
              pong.value().code == StatusCode::kDeadlineExceeded)
      << "unexpected probe code " << static_cast<int>(pong.value().code);

  // Now drain: every one of the kFrames frames gets exactly one response
  // (OK, shed, or deadline-exceeded — never silently dropped).
  std::vector<bool> answered(kFrames + 1, false);
  for (int i = 0; i < kFrames; ++i) {
    StatusOr<RpcResponse> response = ReadOneResponse(slow.value());
    ASSERT_TRUE(response.ok()) << "response " << i;
    uint64_t sequence = response.value().sequence;
    ASSERT_GE(sequence, 1u);
    ASSERT_LE(sequence, static_cast<uint64_t>(kFrames));
    ASSERT_FALSE(answered[sequence]) << "duplicate sequence " << sequence;
    answered[sequence] = true;
  }
  writer.join();
  EXPECT_GE(server.stats().backpressure_pauses, 1);
  server.Stop();
}

TEST_F(NetServingTest, EpollPipelinedFleetCompletesAllClients) {
  auto replicas = MakeReplicas(2);
  Router router(2, RouterConfig{});
  EpollServerConfig config;
  config.num_loops = 2;
  EpollRpcServer server(Borrow(replicas), &router, config);
  ASSERT_TRUE(server.Start().ok());

  FleetConfig fleet_config;
  fleet_config.num_clients = 8;
  fleet_config.num_requests = 400;
  fleet_config.pipeline_window = 8;
  fleet_config.deadline_micros = 5'000'000;
  ClientFleet fleet(*world_, fleet_config);
  StatusOr<FleetReport> report = fleet.Run("127.0.0.1", server.port());
  ASSERT_TRUE(report.ok());

  const FleetReport& r = report.value();
  EXPECT_EQ(r.sent, 400);
  EXPECT_EQ(r.ok, 400);
  EXPECT_EQ(r.transport_errors, 0);
  EXPECT_EQ(r.rehomed_users, 0);
  EXPECT_EQ(r.clients_served, 8);
  server.Stop();
}

TEST_F(NetServingTest, EpollKilledReplicaTripsBreakerAndFailsOver) {
  RouterConfig router_config;
  router_config.breaker.failure_threshold = 3;
  router_config.breaker.open_micros = 60'000'000;
  auto replicas = MakeReplicas(3);
  Router router(3, router_config);
  EpollRpcServer server(Borrow(replicas), &router, EpollServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  FleetConfig fleet_config;
  fleet_config.num_clients = 4;
  fleet_config.num_requests = 200;
  fleet_config.pipeline_window = 4;
  ClientFleet fleet(*world_, fleet_config);

  StatusOr<FleetReport> baseline = fleet.Run("127.0.0.1", server.port());
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline.value().ok, 200);
  ASSERT_EQ(baseline.value().rehomed_users, 0);
  ASSERT_GT(baseline.value().per_replica_ok[1], 0)
      << "no traffic on the replica the test is about to kill";

  replicas[1]->Shutdown();

  StatusOr<FleetReport> failover = fleet.Run("127.0.0.1", server.port());
  ASSERT_TRUE(failover.ok());
  const FleetReport& r = failover.value();
  EXPECT_EQ(r.sent, 200);
  EXPECT_GE(r.ok, (r.sent * 99) / 100);
  EXPECT_GT(r.rehomed_users, 0) << "the dead replica's users must re-home";
  if (r.per_replica_ok.size() > 1) {
    EXPECT_EQ(r.per_replica_ok[1], 0) << "dead replica answered a request";
  }
  EXPECT_GE(router.BreakerStats(1).opens, 1);
  EXPECT_GT(server.stats().core.failover_retries, 0);
  server.Stop();
}

TEST_F(NetServingTest, EpollServerStopsCleanlyWithConnectedClients) {
  auto replicas = MakeReplicas(1);
  Router router(1, RouterConfig{});
  EpollRpcServer server(Borrow(replicas), &router, EpollServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  StatusOr<RpcClient> client = RpcClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  RpcRequest request;
  request.request.user_id = 1;
  request.request.city = world_->user(1).city;
  ASSERT_TRUE(client.value().Call(request).ok());

  // Stop with the connection open and nothing in flight: the loops join,
  // every connection closes, no callback runs after teardown.
  server.Stop();
  server.Stop();  // idempotent
}

}  // namespace
}  // namespace basm::net
