#include "feature_store/feature_store.h"

#include <bit>
#include <utility>

#include "common/logging.h"

namespace basm::feature_store {

namespace {
/// SplitMix64 finalizer — the same mixer the net router's hash ring uses.
/// Sequential user ids spread uniformly across shards instead of striping.
uint64_t MixUser(int32_t user_id) {
  uint64_t x = static_cast<uint64_t>(static_cast<uint32_t>(user_id)) +
               0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace

FeatureStore::FeatureStore(feature_store::FeatureServer* server,
                           FeatureStoreConfig config)
    : server_(server), config_(config) {
  BASM_CHECK(server_ != nullptr);
  BASM_CHECK_GT(config_.num_shards, 0);
  BASM_CHECK_GE(config_.capacity_per_shard, 0);
  BASM_CHECK_GE(config_.max_stale_age_micros, 0);
  shards_.reserve(config_.num_shards);
  for (int32_t i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (!config_.journal.dir.empty()) {
    journal_ = std::make_unique<ClickJournal>(config_.journal);
  }
}

int FeatureStore::StalenessBucket(int64_t age_micros) {
  if (age_micros <= 0) return 0;
  int bucket = std::bit_width(static_cast<uint64_t>(age_micros));
  return bucket < kStalenessBuckets ? bucket : kStalenessBuckets - 1;
}

int64_t FeatureStore::StalenessBucketValue(int bucket) {
  if (bucket <= 0) return 0;
  // Bucket b holds ages in [2^(b-1), 2^b); report the midpoint.
  const int64_t lo = int64_t{1} << (bucket - 1);
  return lo + lo / 2;
}

int32_t FeatureStore::ShardOf(int32_t user_id) const {
  return static_cast<int32_t>(MixUser(user_id) %
                              static_cast<uint64_t>(config_.num_shards));
}

void FeatureStore::RefreshLocked(
    Shard& shard, int32_t user_id,
    const std::vector<data::BehaviorEvent>& behaviors) {
  if (!cache_enabled()) return;
  auto it = shard.index.find(user_id);
  if (it != shard.index.end()) {
    // Refresh in place and move to the front (most recently fetched).
    it->second->behaviors.assign(behaviors.begin(), behaviors.end());
    it->second->fetched_at = Clock::now();
    it->second->prefetch_fresh = false;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (static_cast<int64_t>(shard.lru.size()) >= config_.capacity_per_shard) {
    // Reuse the victim's node (and its buffer capacity) for the new user.
    auto victim = std::prev(shard.lru.end());
    shard.index.erase(victim->user_id);
    ++shard.evictions;
    victim->user_id = user_id;
    victim->behaviors.assign(behaviors.begin(), behaviors.end());
    victim->fetched_at = Clock::now();
    victim->prefetch_fresh = false;
    shard.lru.splice(shard.lru.begin(), shard.lru, victim);
    shard.index[user_id] = shard.lru.begin();
  } else {
    Entry entry;
    entry.user_id = user_id;
    entry.behaviors = behaviors;
    entry.fetched_at = Clock::now();
    shard.lru.push_front(std::move(entry));
    shard.index[user_id] = shard.lru.begin();
  }
  ++shard.insertions;
}

bool FeatureStore::ConsumePrefetchLocked(
    Shard& shard, int32_t user_id,
    feature_store::FeatureServer::UserFeatures* out) {
  auto it = shard.index.find(user_id);
  if (it == shard.index.end() || !it->second->prefetch_fresh) return false;
  it->second->prefetch_fresh = false;  // one-shot either way
  auto ver = shard.versions.find(user_id);
  uint64_t current = ver == shard.versions.end() ? 0 : ver->second;
  if (it->second->prefetch_version != current) {
    // A click landed after the prefetch: the parked window predates it and
    // must not be served (it would break fetch bit-identity).
    ++shard.prefetch_discarded;
    return false;
  }
  out->user_id = user_id;
  out->behaviors = it->second->behaviors;
  ++shard.prefetch_hits;
  // Consuming counts as a fetch for recency purposes.
  it->second->fetched_at = Clock::now();
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return true;
}

feature_store::FeatureServer::UserFeatures FeatureStore::GetFeatures(
    int32_t user_id) {
  Shard& shard = *shards_[ShardOf(user_id)];
  MutexLock lock(&shard.mu);
  feature_store::FeatureServer::UserFeatures uf;
  if (ConsumePrefetchLocked(shard, user_id, &uf)) return uf;
  uf = server_->GetUserFeatures(user_id);
  ++shard.fresh_fetches;
  RefreshLocked(shard, user_id, uf.behaviors);
  return uf;
}

StatusOr<feature_store::FeatureServer::UserFeatures> FeatureStore::FetchFeatures(
    int32_t user_id) {
  Shard& shard = *shards_[ShardOf(user_id)];
  uint64_t version = 0;
  {
    MutexLock lock(&shard.mu);
    feature_store::FeatureServer::UserFeatures uf;
    if (ConsumePrefetchLocked(shard, user_id, &uf)) return uf;
    auto ver = shard.versions.find(user_id);
    version = ver == shard.versions.end() ? 0 : ver->second;
  }
  // The server round-trip runs outside the shard lock (same discipline as
  // Prefetch) so concurrent fetches and clicks on this shard overlap it.
  // The version snapshot makes the cache refresh safe: a click racing the
  // fetch bumps the version, and a stale-relative-to-that-click response is
  // returned to the caller but not cached.
  StatusOr<feature_store::FeatureServer::UserFeatures> fetched =
      server_->FetchUserFeatures(user_id);  // basm-lint: allow(feature-fetch-outside-store)
  MutexLock lock(&shard.mu);
  if (!fetched.ok()) {
    ++shard.fetch_failures;
    return fetched.status();
  }
  ++shard.fresh_fetches;
  auto ver = shard.versions.find(user_id);
  if ((ver == shard.versions.end() ? 0 : ver->second) == version) {
    RefreshLocked(shard, user_id, fetched.value().behaviors);
  }
  return fetched;
}

std::optional<StaleFeatures> FeatureStore::LastKnownFeatures(
    int32_t user_id, bool* expired) {
  if (expired != nullptr) *expired = false;
  Shard& shard = *shards_[ShardOf(user_id)];
  MutexLock lock(&shard.mu);
  auto it = shard.index.find(user_id);
  if (it == shard.index.end()) {
    ++shard.stale_misses;
    return std::nullopt;
  }
  const int64_t age_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          Clock::now() - it->second->fetched_at)
          .count();
  if (config_.max_stale_age_micros > 0 &&
      age_micros > config_.max_stale_age_micros) {
    // Past the TTL budget: refuse the window so the caller degrades to
    // empty. Counted separately from misses so the export can tell "never
    // had it" from "had it but it rotted".
    ++shard.stale_expired;
    if (expired != nullptr) *expired = true;
    return std::nullopt;
  }
  ++shard.stale_hits;
  ++shard.staleness_hist[StalenessBucket(age_micros)];
  StaleFeatures stale;
  stale.behaviors = it->second->behaviors;
  stale.age_micros = age_micros;
  return stale;
}

void FeatureStore::RecordClick(int32_t user_id,
                               const data::BehaviorEvent& event) {
  if (journal_ != nullptr) {
    // Write-ahead: the click must be durable (in the kernel page cache at
    // minimum) before it mutates any state. A failed append — injected or
    // real — drops the click entirely rather than applying it un-journaled;
    // the journal's write_failures counter carries the loss and the request
    // path never sees an error.
    if (!journal_->AppendRecord(user_id, event).ok()) return;
  }
  Shard& shard = *shards_[ShardOf(user_id)];
  MutexLock lock(&shard.mu);
  ++shard.versions[user_id];
  server_->RecordClick(user_id, event);
}

Status FeatureStore::RecoverFromJournal(
    const std::function<void(int32_t, const data::BehaviorEvent&)>& republish,
    ReplayReport* report) {
  if (journal_ == nullptr) {
    if (report != nullptr) *report = ReplayReport{};
    return Status::Ok();
  }
  return journal_->ReplayInto(
      [this, &republish](const ClickRecord& record) {
        {
          Shard& shard = *shards_[ShardOf(record.user_id)];
          MutexLock lock(&shard.mu);
          ++shard.versions[record.user_id];
          server_->RecordClick(record.user_id, record.event);
        }
        if (republish) republish(record.user_id, record.event);
      },
      report);
}

bool FeatureStore::Prefetch(int32_t user_id,
                            Clock::time_point deadline) {
  if (!cache_enabled()) return false;
  Shard& shard = *shards_[ShardOf(user_id)];
  uint64_t version;
  {
    MutexLock lock(&shard.mu);
    if (Clock::now() >= deadline) {
      // The request this prefetch was for is already doomed; don't spend a
      // server round-trip on it.
      ++shard.prefetch_cancelled;
      return false;
    }
    auto ver = shard.versions.find(user_id);
    version = ver == shard.versions.end() ? 0 : ver->second;
  }
  // The server round-trip runs outside the shard lock so foreground
  // fetches on this shard overlap it; the version snapshot above is what
  // makes that safe (a click racing the fetch bumps the version, and the
  // parked window is discarded at consumption instead of served).
  StatusOr<feature_store::FeatureServer::UserFeatures> fetched =
      server_->FetchUserFeatures(user_id);  // basm-lint: allow(feature-fetch-outside-store)
  MutexLock lock(&shard.mu);
  ++shard.prefetch_issued;
  if (!fetched.ok()) {
    ++shard.fetch_failures;
    return false;
  }
  ++shard.fresh_fetches;
  RefreshLocked(shard, user_id, fetched.value().behaviors);
  auto it = shard.index.find(user_id);
  it->second->prefetch_fresh = true;
  it->second->prefetch_version = version;
  return true;
}

FeatureStoreStats FeatureStore::stats() const {
  FeatureStoreStats totals;
  std::array<int64_t, kStalenessBuckets> hist = {};
  int64_t served = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    totals.fresh_fetches += shard->fresh_fetches;
    totals.fetch_failures += shard->fetch_failures;
    totals.cache_entries += static_cast<int64_t>(shard->lru.size());
    totals.stale_hits += shard->stale_hits;
    totals.stale_misses += shard->stale_misses;
    totals.insertions += shard->insertions;
    totals.evictions += shard->evictions;
    totals.prefetch_issued += shard->prefetch_issued;
    totals.prefetch_hits += shard->prefetch_hits;
    totals.prefetch_discarded += shard->prefetch_discarded;
    totals.prefetch_cancelled += shard->prefetch_cancelled;
    totals.stale_expired += shard->stale_expired;
    for (int b = 0; b < kStalenessBuckets; ++b) {
      hist[b] += shard->staleness_hist[b];
      served += shard->staleness_hist[b];
    }
  }
  if (served > 0) {
    auto percentile = [&hist, served](double q) {
      const int64_t target =
          static_cast<int64_t>(q * static_cast<double>(served - 1));
      int64_t seen = 0;
      for (int b = 0; b < kStalenessBuckets; ++b) {
        seen += hist[b];
        if (seen > target) return StalenessBucketValue(b);
      }
      return StalenessBucketValue(kStalenessBuckets - 1);
    };
    totals.served_staleness_p50_micros = percentile(0.50);
    totals.served_staleness_p99_micros = percentile(0.99);
  }
  if (journal_ != nullptr) {
    const JournalStats js = journal_->stats();
    totals.journal_enabled = true;
    totals.journal_appends = js.appends;
    totals.journal_fsyncs = js.fsyncs;
    totals.journal_write_failures = js.write_failures;
    totals.journal_rotations = js.rotations;
    totals.journal_recovered = js.recovered;
    totals.journal_truncated_tail_bytes = js.truncated_tail_bytes;
  }
  return totals;
}

}  // namespace basm::feature_store
