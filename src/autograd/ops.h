#ifndef BASM_AUTOGRAD_OPS_H_
#define BASM_AUTOGRAD_OPS_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"

namespace basm::autograd {

/// Differentiable operations. Each builds a new graph node whose backward_fn
/// accumulates into the parents. All ops accept any-rank tensors unless a
/// specific rank is documented; broadcast variants state their contract.

/// -- Linear algebra --------------------------------------------------------

/// [m,k] x [k,n] -> [m,n].
Variable MatMul(const Variable& a, const Variable& b);
/// Batched [B,m,k] x [B,k,n] -> [B,m,n]; used by attention and per-sample
/// dynamic ("instance") linear layers.
Variable BatchedMatMul(const Variable& a, const Variable& b);
/// Batched A B^T: [B,m,k] x [B,n,k] -> [B,m,n]; the Q K^T step of
/// scaled-dot-product attention without materializing a transpose.
Variable BatchedMatMulTransB(const Variable& a, const Variable& b);

/// -- Elementwise -------------------------------------------------------------

Variable Add(const Variable& a, const Variable& b);      // same shape
Variable Sub(const Variable& a, const Variable& b);      // same shape
Variable Mul(const Variable& a, const Variable& b);      // same shape
Variable Div(const Variable& a, const Variable& b);      // same shape
Variable Scale(const Variable& a, float s);
Variable AddScalar(const Variable& a, float s);
Variable Neg(const Variable& a);

/// a:[m,n], b:[1,n] (or [n]) broadcast across rows.
Variable AddRowBroadcast(const Variable& a, const Variable& b);
Variable MulRowBroadcast(const Variable& a, const Variable& b);
/// a:[m,n], b:[m,1] (or [m]) broadcast across columns.
Variable AddColBroadcast(const Variable& a, const Variable& b);
Variable MulColBroadcast(const Variable& a, const Variable& b);

/// -- Nonlinearities -----------------------------------------------------------

Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);
Variable Relu(const Variable& a);
Variable LeakyRelu(const Variable& a, float alpha = 0.01f);
Variable Exp(const Variable& a);
/// log(max(a, floor)); gradient is 1/max(a, floor).
Variable Log(const Variable& a, float floor = 1e-12f);
/// 1/sqrt(a + eps); used by batch normalization.
Variable Rsqrt(const Variable& a, float eps = 1e-5f);

/// -- Reductions -----------------------------------------------------------------

/// Sum of all elements -> [1].
Variable SumAll(const Variable& a);
/// Mean of all elements -> [1].
Variable MeanAll(const Variable& a);
/// [m,n] -> [m,1] row sums.
Variable RowSum(const Variable& a);
/// [m,n] -> [1,n] column means (batch statistics).
Variable ColMean(const Variable& a);

/// -- Structure ----------------------------------------------------------------------

/// Concatenate rank-2 variables along columns.
Variable ConcatCols(const std::vector<Variable>& parts);
/// Columns [start, start+len) of a rank-2 variable.
Variable SliceCols(const Variable& a, int64_t start, int64_t len);
/// Shape change with identical numel (copies).
Variable Reshape(const Variable& a, std::vector<int64_t> new_shape);

/// Row-wise softmax of [m,n].
Variable RowSoftmax(const Variable& a);

/// Repeats each row of a rank-2 [m,n] tensor `times` times consecutively,
/// producing [m*times, n]. Used to align a query against every position of a
/// sequence in attention blocks.
Variable RepeatInterleaveRows(const Variable& a, int64_t times);

/// -- Gather / scatter ------------------------------------------------------------------

/// Gathers rows of `table` ([N,D]): result is [indices.size(), D]. Backward
/// scatter-adds into the table gradient; the touched-row set is recorded on
/// the table node's side through the dense gradient.
Variable EmbeddingLookup(const Variable& table,
                         const std::vector<int32_t>& indices);

/// -- Losses ------------------------------------------------------------------------------

/// Mean binary cross-entropy with logits. `logits` is [B] or [B,1]; `labels`
/// is a plain tensor of the same numel with values in {0,1} (soft labels in
/// [0,1] also work). Numerically stable log-sum-exp formulation.
Variable BceWithLogits(const Variable& logits, const Tensor& labels);

/// Mean squared error against a constant target of the same shape.
Variable MseLoss(const Variable& pred, const Tensor& target);

}  // namespace basm::autograd

#endif  // BASM_AUTOGRAD_OPS_H_
