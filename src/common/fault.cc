#include "common/fault.h"

#include <utility>

#include "common/env.h"
#include "common/logging.h"

namespace basm {

FaultInjector::FaultInjector(uint64_t seed) : seed_(seed) {}

void FaultInjector::Configure(const std::string& site,
                              FaultSiteConfig config) {
  BASM_CHECK_GE(config.error_probability, 0.0);
  BASM_CHECK_LE(config.error_probability, 1.0);
  BASM_CHECK_GE(config.spike_probability, 0.0);
  BASM_CHECK_LE(config.spike_probability, 1.0);
  MutexLock lock(&mu_);
  Site& s = sites_[site];
  s.config = std::move(config);
  // Re-fork with a fresh tag so reconfiguring mid-run yields a stream that
  // does not depend on how many calls the old configuration consumed.
  s.rng = Rng(seed_).Fork(next_site_tag_++);
  s.stats = FaultSiteStats{};
}

void FaultInjector::SetDefaultConfig(FaultSiteConfig config) {
  MutexLock lock(&mu_);
  has_default_ = true;
  default_config_ = std::move(config);
}

FaultDecision FaultInjector::Evaluate(const std::string& site) {
  MutexLock lock(&mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    if (!has_default_) return FaultDecision{};
    Site& fresh = sites_[site];
    fresh.config = default_config_;
    fresh.rng = Rng(seed_).Fork(next_site_tag_++);
    it = sites_.find(site);
  }
  Site& s = it->second;
  int64_t call = s.stats.calls++;

  FaultDecision decision;
  const FaultSiteConfig& c = s.config;
  if (c.outage_start_call >= 0 && call >= c.outage_start_call &&
      call < c.outage_start_call + c.outage_calls) {
    ++s.stats.outages;
    ++s.stats.errors;
    decision.delay_micros = c.outage_stall_micros;
    decision.status = Status(c.error_code, c.error_message + " (outage)");
    return decision;
  }
  // One draw per fault kind keeps the per-site stream aligned across
  // configs with the same probabilities (determinism contract).
  bool error = c.error_probability > 0.0 && s.rng.Bernoulli(c.error_probability);
  bool spike = c.spike_probability > 0.0 && s.rng.Bernoulli(c.spike_probability);
  if (spike) {
    ++s.stats.spikes;
    decision.delay_micros = c.spike_micros;
  }
  if (error) {
    ++s.stats.errors;
    decision.status = Status(c.error_code, c.error_message);
  }
  return decision;
}

FaultSiteStats FaultInjector::SiteStats(const std::string& site) const {
  MutexLock lock(&mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? FaultSiteStats{} : it->second.stats;
}

namespace {

FaultInjector* FromEnvImpl() {
  int64_t rate_percent = EnvInt("BASM_FAULT_RATE", 0);
  if (rate_percent <= 0) return nullptr;
  if (rate_percent > 100) rate_percent = 100;
  uint64_t seed = static_cast<uint64_t>(EnvInt("BASM_FAULT_SEED", 42));
  auto* injector = new FaultInjector(seed);
  FaultSiteConfig config;
  config.error_probability = static_cast<double>(rate_percent) / 100.0;
  config.spike_probability = static_cast<double>(rate_percent) / 100.0;
  config.spike_micros = 1000;
  injector->SetDefaultConfig(config);
  BASM_LOG(Info) << "fault injection from env: rate " << rate_percent
                 << "%, seed " << seed;
  return injector;
}

}  // namespace

FaultInjector* FaultInjector::FromEnv() {
  // Leaked singleton: alive for the process, safe during static teardown.
  static FaultInjector* global = FromEnvImpl();
  return global;
}

}  // namespace basm
