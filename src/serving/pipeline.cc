#include "serving/pipeline.h"

#include <algorithm>
#include <numeric>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "serving/parallel_score.h"

namespace basm::serving {

namespace {
/// Seed of the per-call example RNG. World::MakeExample consumes randomness
/// only for the ground-truth noise and sampled label, neither of which feeds
/// the model's features, so a fixed per-call stream keeps scores
/// deterministic while making the serve path re-entrant (the former
/// `scratch_rng_` member was a latent data race under concurrent scoring).
constexpr uint64_t kExampleRngSeed = 0xFEED;
}  // namespace

Pipeline::Pipeline(const data::World& world,
                   feature_store::FeatureStore* features,
                   const RecallIndex* recall, models::CtrModel* model,
                   int32_t recall_size, int32_t expose_k)
    : world_(world),
      features_(features),
      recall_(recall),
      model_(model),
      slot_(nullptr),
      recall_size_(recall_size),
      expose_k_(expose_k),
      fault_injector_(FaultInjector::FromEnv()) {
  BASM_CHECK(features_ != nullptr);
  BASM_CHECK(recall_ != nullptr);
  BASM_CHECK(model_ != nullptr);
  BASM_CHECK_GE(recall_size_, expose_k_);
  // Wrapped without an eval-mode check: callers may flip train/eval on the
  // static model between serving phases (the A/B simulator's daily loop).
  auto servable = std::make_shared<online::ServableModel>();
  servable->model = model_;
  static_servable_ = std::move(servable);
}

Pipeline::Pipeline(const data::World& world,
                   feature_store::FeatureStore* features,
                   const RecallIndex* recall, const online::ModelSlot* slot,
                   int32_t recall_size, int32_t expose_k)
    : world_(world),
      features_(features),
      recall_(recall),
      model_(nullptr),
      slot_(slot),
      recall_size_(recall_size),
      expose_k_(expose_k),
      fault_injector_(FaultInjector::FromEnv()) {
  BASM_CHECK(features_ != nullptr);
  BASM_CHECK(recall_ != nullptr);
  BASM_CHECK(slot_ != nullptr);
  BASM_CHECK_GE(recall_size_, expose_k_);
}

std::shared_ptr<const online::ServableModel> Pipeline::AcquireServable()
    const {
  if (slot_ == nullptr) return static_servable_;
  std::shared_ptr<const online::ServableModel> servable = slot_->Acquire();
  BASM_CHECK(servable != nullptr)
      << "slot-backed pipeline scored before a model was installed";
  return servable;
}

std::vector<RankedItem> Pipeline::Serve(const Request& request,
                                        Rng& rng) const {
  return RankCandidates(request, Recall(request, rng));
}

std::vector<int32_t> Pipeline::Recall(const Request& request, Rng& rng) const {
  return recall_->RecallByCity(request.city, recall_size_, rng);
}

std::vector<int32_t> Pipeline::RecallFallible(const Request& request,
                                              Rng& rng,
                                              bool* degraded) const {
  if (fault_injector_ != nullptr) {
    FaultDecision decision = fault_injector_->Evaluate(kRecallFaultSite);
    if (decision.delay_micros > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(decision.delay_micros));
    }
    if (!decision.status.ok()) {
      // LBS recall is down: serve the head of the city's item list — no
      // popularity weighting, no sampling, but a slate that renders.
      const std::vector<int32_t>& pool = world_.CityItems(request.city);
      int32_t k = std::min<int32_t>(recall_size_,
                                    static_cast<int32_t>(pool.size()));
      *degraded = true;
      return std::vector<int32_t>(pool.begin(), pool.begin() + k);
    }
  }
  return Recall(request, rng);
}

std::vector<data::Example> Pipeline::BuildExamplesWithBehaviors(
    const Request& request, const std::vector<int32_t>& candidates,
    const std::vector<data::BehaviorEvent>& behaviors) const {
  BASM_CHECK(!candidates.empty());
  // Build one Example per candidate. Position is unknown pre-ranking; the
  // production system scores with a default slot (here: middle slot) and
  // assigns real positions after ordering.
  const int32_t kScoringPosition = 4;
  Rng example_rng(kExampleRngSeed);
  std::vector<data::Example> examples;
  examples.reserve(candidates.size());
  for (int32_t item : candidates) {
    examples.push_back(world_.MakeExample(
        request.user_id, item, request.hour, request.weekday,
        kScoringPosition, request.city, request.day, request.request_id,
        behaviors, example_rng));
  }
  return examples;
}

std::vector<data::Example> Pipeline::BuildExamples(
    const Request& request, const std::vector<int32_t>& candidates) const {
  feature_store::FeatureServer::UserFeatures uf = features_->GetFeatures(request.user_id);
  return BuildExamplesWithBehaviors(request, candidates, uf.behaviors);
}

void Pipeline::EnableFaultTolerance(FeatureFaultPolicy policy) {
  BASM_CHECK_GE(policy.retry.max_attempts, 1);
  fault_policy_ = policy;
  fault_tolerant_ = true;
}

void Pipeline::EnableParallelScoring(ThreadPool* pool,
                                     int64_t min_rows_per_shard) {
  BASM_CHECK(pool != nullptr);
  BASM_CHECK_GE(min_rows_per_shard, 1);
  scoring_pool_ = pool;
  min_rows_per_shard_ = min_rows_per_shard;
}

std::vector<data::Example> Pipeline::BuildExamplesFallible(
    const Request& request, const std::vector<int32_t>& candidates,
    std::chrono::steady_clock::time_point deadline,
    FeatureFetchOutcome* outcome) const {
  BASM_CHECK(outcome != nullptr);
  *outcome = FeatureFetchOutcome{};
  if (!fault_tolerant_) {
    // Policy not armed: identical to the infallible path.
    return BuildExamples(request, candidates);
  }

  using Clock = std::chrono::steady_clock;
  CircuitBreaker* breaker = fault_policy_.breaker;
  const RetryPolicy& retry = fault_policy_.retry;
  feature_store::FeatureServer::UserFeatures uf;
  uf.user_id = request.user_id;
  outcome->degraded = true;  // cleared on a successful fetch

  if (breaker != nullptr && !breaker->Allow()) {
    // Dependency is known-dead: fail fast into the degraded slate without
    // spending any of the request's remaining budget.
    outcome->short_circuited = true;
  } else {
    // Jitter stream forked per request: retry timing is deterministic and
    // independent of which worker runs the request.
    Rng jitter_rng = Rng(fault_policy_.jitter_seed)
                         .Fork(static_cast<uint64_t>(request.request_id));
    for (int32_t attempt = 1; attempt <= retry.max_attempts; ++attempt) {
      StatusOr<feature_store::FeatureServer::UserFeatures> fetched =
          features_->FetchFeatures(request.user_id);
      if (fetched.ok()) {
        uf = std::move(fetched).value();
        outcome->degraded = false;
        if (breaker != nullptr) breaker->RecordSuccess();
        break;
      }
      outcome->last_error = fetched.status();
      if (breaker != nullptr) {
        outcome->breaker_opened |= breaker->RecordFailure();
        // The breaker tripping mid-loop means stop probing a dead
        // dependency; later attempts would be short-circuited anyway.
        if (outcome->breaker_opened) break;
      }
      if (attempt == retry.max_attempts) break;
      // Deadline propagation: back off only while the request still has
      // budget for the wait plus another attempt.
      int64_t backoff = retry.BackoffMicros(attempt, jitter_rng);
      if (Clock::now() + std::chrono::microseconds(backoff) >= deadline) {
        break;
      }
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      }
      ++outcome->retries;
    }
  }
  if (outcome->degraded) {
    // Fresh fetch failed (or was short-circuited): fall back to the last
    // window the store successfully fetched for this user. Stale real
    // behavior preserves most of the spatiotemporal signal an empty window
    // throws away — the chaos drill measures the TAUC gap between the two.
    // The store applies its TTL budget here: a window past
    // max_stale_age_micros comes back empty with `expired` set, and the
    // request drops to the bottom rung of the ladder (empty window).
    bool expired = false;
    std::optional<feature_store::StaleFeatures> stale =
        features_->LastKnownFeatures(request.user_id, &expired);
    if (stale.has_value()) {
      outcome->stale = true;
      outcome->stale_age_micros = stale->age_micros;
      uf.behaviors = std::move(stale->behaviors);
    } else {
      outcome->stale_expired = expired;
    }
  }
  return BuildExamplesWithBehaviors(request, candidates, uf.behaviors);
}

std::vector<RankedItem> Pipeline::MakeSlate(
    const std::vector<int32_t>& candidates, const std::vector<float>& scores,
    int32_t expose_k) {
  BASM_CHECK_EQ(candidates.size(), scores.size());
  std::vector<int32_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return scores[a] > scores[b];
  });

  std::vector<RankedItem> slate;
  int32_t k = std::min<int32_t>(expose_k,
                                static_cast<int32_t>(candidates.size()));
  slate.reserve(k);
  for (int32_t pos = 0; pos < k; ++pos) {
    RankedItem ri;
    ri.item_id = candidates[order[pos]];
    ri.score = scores[order[pos]];
    ri.position = pos;
    slate.push_back(ri);
  }
  return slate;
}

std::vector<RankedItem> Pipeline::RankCandidates(
    const Request& request, const std::vector<int32_t>& candidates) const {
  std::vector<data::Example> examples = BuildExamples(request, candidates);
  // Held across the forward so a concurrent hot-swap cannot free the model.
  std::shared_ptr<const online::ServableModel> servable = AcquireServable();
  if (scoring_pool_ != nullptr) {
    // Parallel-armed: large slates shard across the pool; scores stay
    // bit-identical to the serial path below.
    std::vector<float> scores =
        ScoreExamples(servable->model, world_.schema(), examples,
                      scoring_pool_, min_rows_per_shard_);
    return MakeSlate(candidates, scores, expose_k_);
  }
  std::vector<const data::Example*> ptrs;
  ptrs.reserve(examples.size());
  for (const auto& e : examples) ptrs.push_back(&e);
  data::Batch batch = data::MakeBatch(ptrs, world_.schema());
  std::vector<float> scores = servable->model->PredictProbs(batch);
  return MakeSlate(candidates, scores, expose_k_);
}

}  // namespace basm::serving
