#include "tools/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

#include "tools/suppressions.h"

namespace basm::lint {

// ---------------------------------------------------------------------------
// Rule catalog. Each rule is a token/regex scan over comment- and
// string-stripped lines, deliberately libclang-free so the linter builds
// anywhere the project does. Escapes, in order of preference: fix the code,
// add an inline `basm-lint: allow(rule-id)` on the offending line, or (for
// whole files that legitimately own the construct) add an entry to the
// declarative table in tools/allowlist.conf.
// ---------------------------------------------------------------------------

namespace {

bool PathAllowed(const std::string& rule, const std::string& path) {
  return SuppressionsMatch(LintPathAllowlist(), rule, path);
}

bool IsHeaderPath(const std::string& path) {
  return path.ends_with(".h") || path.ends_with(".hpp");
}

}  // namespace

bool MarkerAllows(const std::string& raw_line, const std::string& marker,
                  const std::string& rule) {
  size_t at = raw_line.find(marker);
  if (at == std::string::npos) return false;
  size_t open = raw_line.find('(', at);
  size_t close = raw_line.find(')', open);
  if (close == std::string::npos) return false;
  std::string list = raw_line.substr(open + 1, close - open - 1);
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item.erase(std::remove(item.begin(), item.end(), ' '), item.end());
    if (item == rule) return true;
  }
  return false;
}

namespace {

/// True when the raw (un-stripped) line carries an inline suppression for
/// `rule`: `basm-lint: allow(rule-a,rule-b)`.
bool LineAllowed(const std::string& raw_line, const std::string& rule) {
  return MarkerAllows(raw_line, "basm-lint: allow(", rule);
}

}  // namespace

std::string StripLine(const std::string& line, bool* in_block_comment) {
  std::string out;
  out.reserve(line.size());
  size_t i = 0;
  while (i < line.size()) {
    if (*in_block_comment) {
      if (line.compare(i, 2, "*/") == 0) {
        *in_block_comment = false;
        out += "  ";
        i += 2;
      } else {
        out += ' ';
        ++i;
      }
      continue;
    }
    if (line.compare(i, 2, "//") == 0) {
      out.append(line.size() - i, ' ');
      break;
    }
    if (line.compare(i, 2, "/*") == 0) {
      *in_block_comment = true;
      out += "  ";
      i += 2;
      continue;
    }
    char c = line[i];
    if (c == '"' || c == '\'') {
      char quote = c;
      out += ' ';
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          out += "  ";
          i += 2;
          continue;
        }
        bool closing = line[i] == quote;
        out += ' ';
        ++i;
        if (closing) break;
      }
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

namespace {

// --- individual rule matchers, operating on one stripped line --------------

const std::regex kRawMutexRe(
    R"(std\s*::\s*(mutex|timed_mutex|recursive_mutex|shared_mutex|lock_guard|unique_lock|scoped_lock|condition_variable(_any)?)\b)");
const std::regex kRawMutexIncludeRe(
    R"(#\s*include\s*<(mutex|condition_variable|shared_mutex)>)");

const std::regex kDetachRe(R"((\.|->)\s*detach\s*\(\s*\))");

const std::regex kNondeterminismRe(
    R"(std\s*::\s*random_device|std\s*::\s*rand\b|\brand\s*\(\s*\)|\bsrand\s*\(|\btime\s*\(\s*(nullptr|NULL|0)\s*\)|\bdrand48\b)");

const std::regex kIostreamIncludeRe(R"(#\s*include\s*<iostream>)");

/// `Status Foo(` / `StatusOr<...> Foo(` declaration heads. Constructor
/// calls (`Status(...)`), qualified names (`Status::Ok(`), callable types
/// (`std::function<Status(...)`) and assignments (`Status s = ...`) all
/// fail the identifier-then-paren shape, so they never match.
const std::regex kStatusDeclRe(
    R"((?:^|[^:\w])(?:basm\s*::\s*)?(Status|StatusOr\s*<.*>)\s+([A-Za-z_]\w*)\s*\()");

const std::regex kNodiscardRe(R"(\[\[\s*nodiscard\s*\]\])");

/// Member calls of the raw feature-server RPC (`x.FetchUserFeatures(` /
/// `x->FetchUserFeatures(`). Declarations and qualified mentions
/// (`FeatureServer::FetchUserFeatures`) fail the member-access shape, so
/// the server's own code never matches.
const std::regex kRawFeatureFetchRe(R"((\.|->)\s*FetchUserFeatures\s*\()");

/// Member calls of the raw click-journal IO surface (`x.AppendRecord(` /
/// `x->ReplayInto(`). Durability must flow through FeatureStore::RecordClick
/// / RecoverFromJournal so the write-ahead ordering (append before apply)
/// cannot be bypassed; the store and the journal's own tests are
/// path-allowlisted.
const std::regex kRawJournalIoRe(R"((\.|->)\s*(AppendRecord|ReplayInto)\s*\()");

}  // namespace

std::vector<RuleInfo> Rules() {
  return {
      {"nodiscard-status",
       "Status/StatusOr-returning declarations must be [[nodiscard]] so the "
       "compiler flags every ignored recoverable failure"},
      {"raw-mutex",
       "all locking goes through basm::Mutex/MutexLock/CondVar "
       "(common/synchronization.h) so Clang thread-safety analysis can see "
       "every lock"},
      {"thread-detach",
       "detached threads outlive shutdown and race teardown; every thread "
       "must be joined (ThreadPool or an owned std::thread)"},
      {"nondeterminism",
       "rand/time/random_device make runs irreproducible; all entropy flows "
       "from seeded basm::Rng streams (common/rng)"},
      {"iostream-in-header",
       "<iostream> in a header injects static iostream initializers into "
       "every TU; headers use <ostream> and logging goes through BASM_LOG"},
      {"feature-fetch-outside-store",
       "direct FeatureServer::FetchUserFeatures call bypasses the sharded "
       "FeatureStore facade (stale cache, prefetch, fault accounting); "
       "fetch through feature_store::FeatureStore instead"},
      {"journal-io-outside-store",
       "direct ClickJournal append/replay bypasses the FeatureStore's "
       "write-ahead ordering (journal before apply) and recovery "
       "accounting; use FeatureStore::RecordClick / RecoverFromJournal"},
  };
}

std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content) {
  std::vector<Finding> findings;
  const bool is_header = IsHeaderPath(path);

  auto report = [&](int line_no, const std::string& raw,
                    const std::string& rule, const std::string& message) {
    if (PathAllowed(rule, path)) return;
    if (LineAllowed(raw, rule)) return;
    findings.push_back(Finding{path, line_no, rule, message});
  };

  std::istringstream in(content);
  std::string raw;
  bool in_block_comment = false;
  // One line of lookbehind so `[[nodiscard]]` on its own line (or trailing
  // on the previous declaration line) still blesses the declaration head.
  std::string previous_stripped;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = StripLine(raw, &in_block_comment);

    if (std::regex_search(line, kRawMutexRe) ||
        std::regex_search(line, kRawMutexIncludeRe)) {
      report(line_no, raw, "raw-mutex",
             "raw std synchronization primitive; use basm::Mutex/MutexLock/"
             "CondVar from common/synchronization.h");
    }
    if (std::regex_search(line, kDetachRe)) {
      report(line_no, raw, "thread-detach",
             "detached thread; join it instead (owned std::thread or "
             "ThreadPool)");
    }
    if (std::regex_search(line, kNondeterminismRe)) {
      report(line_no, raw, "nondeterminism",
             "unseeded entropy source; draw from a seeded basm::Rng stream");
    }
    if (std::regex_search(line, kRawFeatureFetchRe)) {
      report(line_no, raw, "feature-fetch-outside-store",
             "raw feature-server fetch; go through the FeatureStore facade "
             "(feature_store/feature_store.h)");
    }
    if (std::regex_search(line, kRawJournalIoRe)) {
      report(line_no, raw, "journal-io-outside-store",
             "raw click-journal IO; go through FeatureStore::RecordClick / "
             "RecoverFromJournal (feature_store/feature_store.h)");
    }
    if (is_header && std::regex_search(line, kIostreamIncludeRe)) {
      report(line_no, raw, "iostream-in-header",
             "#include <iostream> in a header; include <ostream> and log "
             "via BASM_LOG");
    }
    if (is_header) {
      std::smatch m;
      if (std::regex_search(line, m, kStatusDeclRe) &&
          !std::regex_search(line, kNodiscardRe) &&
          !std::regex_search(previous_stripped, kNodiscardRe)) {
        report(line_no, raw, "nodiscard-status",
               "declaration returning " + m[1].str() +
                   " must be [[nodiscard]]");
      }
    }
    previous_stripped = line;
  }
  return findings;
}

std::vector<Finding> LintFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {Finding{path, 0, "io-error", "cannot open file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LintContent(path, buffer.str());
}

namespace {

bool IsLintableFile(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool SkipDirectory(const std::string& name) {
  return name == ".git" || name.rfind("build", 0) == 0 ||
         name == "lint_fixtures" || name == "third_party";
}

}  // namespace

std::vector<Finding> LintPaths(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : paths) {
    fs::path p(root);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      fs::recursive_directory_iterator it(p, ec), end;
      while (it != end) {
        if (it->is_directory() &&
            SkipDirectory(it->path().filename().string())) {
          it.disable_recursion_pending();
        } else if (it->is_regular_file() && IsLintableFile(it->path())) {
          files.push_back(it->path().generic_string());
        }
        it.increment(ec);
        if (ec) break;
      }
    } else {
      // Explicit file arguments are always linted, even fixture files.
      files.push_back(p.generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> findings;
  for (const std::string& file : files) {
    std::vector<Finding> f = LintFile(file);
    findings.insert(findings.end(), f.begin(), f.end());
  }
  return findings;
}

std::string FormatFinding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": " +
         finding.rule + " " + finding.message;
}

}  // namespace basm::lint
