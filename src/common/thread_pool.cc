#include "common/thread_pool.h"

#include <exception>

#include "common/logging.h"

namespace basm {

ThreadPool::ThreadPool(int32_t num_threads, size_t queue_capacity)
    : num_threads_(num_threads), tasks_(queue_capacity) {
  BASM_CHECK_GT(num_threads, 0);
  threads_.reserve(num_threads);
  for (int32_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  BASM_CHECK(task != nullptr);
  return tasks_.Push(std::move(task));
}

void ThreadPool::Shutdown() {
  tasks_.Shutdown();
  // Joining under mu_ is the documented hierarchy (DESIGN §10): the queue
  // is already shut down, so workers are draining toward exit and the join
  // is bounded; holding mu_ makes concurrent Shutdown calls idempotent.
  MutexLock lock(&mu_);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();  // basm-analyze: allow(blocking-under-lock)
  }
}

void ThreadPool::WorkerLoop() {
  while (auto task = tasks_.Pop()) {
    try {
      (*task)();
    } catch (const std::exception& e) {
      BASM_LOG(Error) << "ThreadPool task threw: " << e.what();
    } catch (...) {
      BASM_LOG(Error) << "ThreadPool task threw a non-std exception";
    }
  }
}

}  // namespace basm
