file(REMOVE_RECURSE
  "CMakeFiles/custom_model.dir/custom_model.cc.o"
  "CMakeFiles/custom_model.dir/custom_model.cc.o.d"
  "custom_model"
  "custom_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
