file(REMOVE_RECURSE
  "../bench/table3_dataset_stats"
  "../bench/table3_dataset_stats.pdb"
  "CMakeFiles/table3_dataset_stats.dir/table3_dataset_stats.cc.o"
  "CMakeFiles/table3_dataset_stats.dir/table3_dataset_stats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_dataset_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
