#include "net/router.h"

#include <algorithm>

#include "common/logging.h"

namespace basm::net {

uint64_t Router::HashKey(uint64_t key, uint64_t seed) {
  // SplitMix64 finalizer over the seeded key: cheap, well-mixed, and stable
  // across platforms (the ring layout is part of the protocol's behavior).
  uint64_t z = key + seed * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Router::Router(int32_t num_replicas, RouterConfig config)
    : config_(config) {
  BASM_CHECK_GT(num_replicas, 0);
  BASM_CHECK_GT(config_.virtual_nodes, 0);
  replicas_.reserve(num_replicas);
  ring_.reserve(static_cast<size_t>(num_replicas) * config_.virtual_nodes);
  for (int32_t r = 0; r < num_replicas; ++r) {
    replicas_.push_back(std::make_unique<Replica>(config_.breaker));
    for (int32_t v = 0; v < config_.virtual_nodes; ++v) {
      // Distinct stream per (replica, vnode); the replica id is folded in
      // before hashing so adjacent replicas land on unrelated arcs.
      uint64_t key = (static_cast<uint64_t>(r) << 32) |
                     static_cast<uint64_t>(v);
      ring_.push_back(Point{HashKey(key, config_.hash_seed ^ 0x5EEDULL), r});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.hash < b.hash || (a.hash == b.hash && a.replica < b.replica);
  });
}

void Router::WalkOrder(int32_t user_id, std::vector<int32_t>* order) const {
  order->clear();
  uint64_t h = HashKey(static_cast<uint64_t>(static_cast<uint32_t>(user_id)),
                       config_.hash_seed);
  size_t start = std::lower_bound(ring_.begin(), ring_.end(), h,
                                  [](const Point& p, uint64_t value) {
                                    return p.hash < value;
                                  }) -
                 ring_.begin();
  std::vector<bool> seen(replicas_.size(), false);
  for (size_t i = 0; i < ring_.size() &&
                     order->size() < replicas_.size();
       ++i) {
    const Point& p = ring_[(start + i) % ring_.size()];
    if (!seen[p.replica]) {
      seen[p.replica] = true;
      order->push_back(p.replica);
    }
  }
}

int32_t Router::HomeReplica(int32_t user_id) const {
  std::vector<int32_t> order;
  WalkOrder(user_id, &order);
  return order.front();
}

StatusOr<int32_t> Router::Route(int32_t user_id) {
  std::vector<int32_t> order;
  WalkOrder(user_id, &order);
  for (size_t i = 0; i < order.size(); ++i) {
    int32_t r = order[i];
    Replica& replica = *replicas_[r];
    if (replica.down.load(std::memory_order_relaxed)) continue;
    // Allow() is the breaker's admission gate: open replicas are skipped
    // (their users fail over), half-open replicas admit bounded probes so
    // a revived replica wins its shard back.
    if (!replica.breaker.Allow()) continue;
    replica.routed.fetch_add(1, std::memory_order_relaxed);
    routed_.fetch_add(1, std::memory_order_relaxed);
    if (i > 0) failovers_.fetch_add(1, std::memory_order_relaxed);
    return r;
  }
  unroutable_.fetch_add(1, std::memory_order_relaxed);
  return Status::Unavailable("no admissible replica for user " +
                             std::to_string(user_id));
}

void Router::ReportSuccess(int32_t replica) {
  replicas_.at(replica)->breaker.RecordSuccess();
}

bool Router::ReportFailure(int32_t replica) {
  return replicas_.at(replica)->breaker.RecordFailure();
}

void Router::MarkDown(int32_t replica) {
  replicas_.at(replica)->down.store(true, std::memory_order_relaxed);
}

void Router::MarkUp(int32_t replica) {
  replicas_.at(replica)->down.store(false, std::memory_order_relaxed);
}

bool Router::IsDown(int32_t replica) const {
  return replicas_.at(replica)->down.load(std::memory_order_relaxed);
}

CircuitBreaker::Stats Router::BreakerStats(int32_t replica) const {
  return replicas_.at(replica)->breaker.stats();
}

RouterStats Router::stats() const {
  RouterStats s;
  s.routed = routed_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.unroutable = unroutable_.load(std::memory_order_relaxed);
  s.per_replica.reserve(replicas_.size());
  for (const auto& replica : replicas_) {
    s.per_replica.push_back(replica->routed.load(std::memory_order_relaxed));
  }
  return s;
}

}  // namespace basm::net
