// Fixture: the same fsync-under-lock as blocking_bad.cc, justified by an
// inline allow (the group-commit pattern) — zero surviving findings.
#include "common/mutex.h"

namespace fixture {

class Journal {
 public:
  void Sync() {
    basm::MutexLock lock(&mu_);
    fsync(fd_);  // basm-analyze: allow(blocking-under-lock)
  }

 private:
  basm::Mutex mu_;
  int fd_ = -1;
};

}  // namespace fixture
