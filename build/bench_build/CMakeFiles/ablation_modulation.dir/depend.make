# Empty dependencies file for ablation_modulation.
# This may be replaced when dependencies are built.
