#include "nn/hashed_embedding.h"

namespace basm::nn {

HashedEmbedding::HashedEmbedding(int64_t num_buckets, int64_t dim, Rng& rng,
                                 uint64_t salt)
    : num_buckets_(num_buckets), dim_(dim), salt_(salt) {
  BASM_CHECK_GT(num_buckets_, 0);
  table_ = std::make_unique<Embedding>(num_buckets, dim, rng);
  RegisterModule("table", table_.get());
}

int64_t HashedEmbedding::Bucket(int64_t id) const {
  // SplitMix64 finalizer over (id, salt): avalanche so that sequential ids
  // spread across buckets.
  uint64_t z = static_cast<uint64_t>(id) + salt_ * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<int64_t>(z % static_cast<uint64_t>(num_buckets_));
}

autograd::Variable HashedEmbedding::Forward(
    const std::vector<int64_t>& ids) const {
  std::vector<int32_t> buckets;
  buckets.reserve(ids.size());
  for (int64_t id : ids) {
    buckets.push_back(static_cast<int32_t>(Bucket(id)));
  }
  return table_->Forward(buckets);
}

}  // namespace basm::nn
