// Fixture: a single undocumented nested acquisition silenced by an inline
// allow on the inner-acquisition (witness) line.
#include "common/mutex.h"

namespace fixture {

class Nest {
 public:
  void Acquire() {
    basm::MutexLock outer(&outer_mu_);
    basm::MutexLock inner(&inner_mu_);  // basm-analyze: allow(lock-order)
  }

 private:
  basm::Mutex outer_mu_;
  basm::Mutex inner_mu_;
};

}  // namespace fixture
