file(REMOVE_RECURSE
  "../bench/micro_ops"
  "../bench/micro_ops.pdb"
  "CMakeFiles/micro_ops.dir/micro_ops.cc.o"
  "CMakeFiles/micro_ops.dir/micro_ops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
