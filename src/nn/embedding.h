#ifndef BASM_NN_EMBEDDING_H_
#define BASM_NN_EMBEDDING_H_

#include <vector>

#include "autograd/ops.h"
#include "nn/module.h"

namespace basm::nn {

/// Learnable lookup table mapping sparse ids to dense vectors (Eq. 3-4 of
/// the paper). Gradients scatter-add into the table rows touched by a batch.
class Embedding : public Module {
 public:
  Embedding(int64_t vocab_size, int64_t dim, Rng& rng);

  /// ids.size() rows of the table: [ids.size(), dim]. Ids are bounds-checked.
  autograd::Variable Forward(const std::vector<int32_t>& ids) const;

  int64_t vocab_size() const { return vocab_size_; }
  int64_t dim() const { return dim_; }
  const autograd::Variable& table() const { return table_; }

 private:
  int64_t vocab_size_;
  int64_t dim_;
  autograd::Variable table_;  // [vocab, dim]
};

}  // namespace basm::nn

#endif  // BASM_NN_EMBEDDING_H_
