#ifndef BASM_TENSOR_REFERENCE_OPS_H_
#define BASM_TENSOR_REFERENCE_OPS_H_

#include "tensor/tensor.h"

/// The pre-kernel-layer naive matmul family, frozen as a test oracle. Every
/// optimized backend (blocked, AVX2) is equivalence-tested against these, so
/// they must stay byte-for-byte the simple loops — do not optimize them.
namespace basm::ops::reference {

/// Raw kernels over row-major pointers. Accumulating forms add into C (the
/// Tensor wrappers below hand them zeroed outputs).
///
/// The `av == 0.0f` skip is kept here deliberately: it documents the old
/// behavior and is only profitable on genuinely sparse inputs (embedding-bag
/// style rows); on dense activations it defeats vectorization, which is why
/// the optimized kernels dropped it (see bench/micro_ops zero-skip delta).
void GemmAccumulate(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n);
/// C(k,n) += A^T(k,m) * B(m,n), a is (m,k) row-major.
void GemmTransAAccumulate(const float* a, const float* b, float* c, int64_t m,
                          int64_t k, int64_t n);
/// C(m,n) = A(m,k) * B^T(n,k); overwrites C.
void GemmTransB(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n);

/// Tensor-level oracles, shape-checked like ops::MatMul* but always on the
/// naive loops regardless of the active kernel backend.
Tensor MatMul(const Tensor& a, const Tensor& b);
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
Tensor MatMulTransB(const Tensor& a, const Tensor& b);
Tensor BatchedMatMul(const Tensor& a, const Tensor& b);
Tensor BatchedMatMulTransA(const Tensor& a, const Tensor& b);
Tensor BatchedMatMulTransB(const Tensor& a, const Tensor& b);

}  // namespace basm::ops::reference

#endif  // BASM_TENSOR_REFERENCE_OPS_H_
