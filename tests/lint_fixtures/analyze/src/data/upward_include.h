// Fixture: a src/data header reaching upward into src/runtime, which the
// module DAG forbids (data may only see common and tensor).
#include "common/status.h"
#include "runtime/serving_engine.h"

inline int FixtureUpward() { return 0; }
