// Fixture: unreserved push_back growth inside an audited hot-path
// function. `sized` is exempt via sized construction.
#include <vector>

namespace fixture {

void ProcessBatch(const std::vector<float>& in, std::vector<float>* sink) {
  std::vector<float> sized(in.size());
  std::vector<float> out;
  for (float v : in) {
    out.push_back(v * 2.0f);
  }
  sink->swap(out);
}

}  // namespace fixture
