#ifndef BASM_DATA_IO_H_
#define BASM_DATA_IO_H_

#include <string>

#include "common/status.h"
#include "data/schema.h"

namespace basm::data {

/// Persists a dataset (schema + every example including behavior
/// sequences) to a self-describing binary file, so expensive generation
/// runs can be reused across bench invocations and shared between the
/// offline trainer and the serving simulator.
[[nodiscard]] Status SaveDataset(const Dataset& dataset, const std::string& path);

/// Loads a dataset written by SaveDataset. Fails with InvalidArgument on a
/// foreign or version-mismatched file and Internal on truncation.
[[nodiscard]] StatusOr<Dataset> LoadDataset(const std::string& path);

/// Writes the impression table as CSV (one row per impression, behavior
/// sequence summarized as its category list) for external analysis tools.
[[nodiscard]] Status ExportCsv(const Dataset& dataset, const std::string& path,
                 int64_t max_rows = -1);

}  // namespace basm::data

#endif  // BASM_DATA_IO_H_
