// Fault-tolerance overhead bench: what does arming the fault path cost
// when nothing is failing? Two closed-loop engine runs over identical
// traffic — plain engine vs fault-tolerant engine with a zero-fault
// injector — plus tight-loop costs of the breaker and injector
// primitives. The acceptance bar is happy-path overhead under 2%.
//
// Plain main() like micro_engine: each arm is one long closed-loop run
// with its own recorder, and the headline number is a ratio of two such
// runs, which google-benchmark's stat framework would only obscure.

#include <cstdio>
#include <memory>

#include "common/circuit_breaker.h"
#include "common/env.h"
#include "common/fault.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/timer.h"
#include "data/synth.h"
#include "core/model_zoo.h"
#include "runtime/load_generator.h"
#include "runtime/serving_engine.h"
#include "feature_store/feature_store.h"
#include "feature_store/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

namespace {

using namespace basm;

/// ns/op of a primitive exercised `iters` times.
template <typename Fn>
double NanosPerOp(int64_t iters, Fn&& fn) {
  WallTimer timer;
  for (int64_t i = 0; i < iters; ++i) fn();
  return timer.ElapsedSeconds() * 1e9 / static_cast<double>(iters);
}

}  // namespace

int main() {
  const int64_t prim_iters = FastMode() ? 200000 : 2000000;

  // Primitive costs: what one request pays per fetch on the happy path.
  {
    CircuitBreaker breaker;
    double breaker_ns = NanosPerOp(prim_iters, [&] {
      if (breaker.Allow()) breaker.RecordSuccess();
    });
    FaultInjector injector(42);
    injector.Configure(feature_store::kFeatureFetchFaultSite, FaultSiteConfig{});
    double injector_ns = NanosPerOp(prim_iters, [&] {
      (void)injector.Evaluate(feature_store::kFeatureFetchFaultSite);
    });
    RetryPolicy policy;
    Rng rng(7);
    double backoff_ns = NanosPerOp(
        prim_iters, [&] { (void)policy.BackoffMicros(1, rng); });
    std::printf("primitives (%lld iters)\n", (long long)prim_iters);
    std::printf("  breaker allow+success   %8.1f ns/op\n", breaker_ns);
    std::printf("  injector evaluate       %8.1f ns/op\n", injector_ns);
    std::printf("  retry backoff compute   %8.1f ns/op\n", backoff_ns);
  }

  // Closed-loop arms: identical world, traffic, and engine config; the
  // only difference is whether the fault path is armed.
  data::SynthConfig config = data::SynthConfig::Eleme();
  config.num_users = 2000;
  config.num_items = 1500;
  config.num_cities = 8;
  data::World world(config);
  serving::RecallIndex recall(world);
  auto model =
      core::CreateModel(core::ModelKind::kBasm, world.schema(), 42);
  model->SetTraining(false);

  runtime::LoadConfig load;
  load.num_requests =
      EnvInt("BASM_FAULT_BENCH_REQUESTS", FastMode() ? 300 : 3000);
  load.concurrency = 32;

  runtime::EngineConfig ec;
  ec.num_workers = 4;
  ec.max_batch_requests = 4;
  ec.max_wait_micros = 200;

  auto run_arm = [&](bool armed) {
    feature_store::FeatureServer features(world, world.config().seq_len, 3);
    feature_store::FeatureStore store(&features);
    serving::Pipeline pipeline(world, &store, &recall, model.get(),
                               /*recall_size=*/24, /*expose_k=*/8);
    FaultInjector injector(42);  // zero-fault process
    CircuitBreaker breaker;
    if (armed) {
      features.SetFaultInjector(&injector);
      serving::FeatureFaultPolicy policy;
      policy.breaker = &breaker;
      pipeline.EnableFaultTolerance(policy);
    } else {
      features.SetFaultInjector(nullptr);
    }
    runtime::ServingEngine engine(&pipeline, ec);
    runtime::LoadGenerator generator(world, load);
    return generator.Run(engine);
  };

  std::printf("\nclosed loop: %lld requests, 32 in flight, 4 workers\n",
              (long long)load.num_requests);
  run_arm(false);  // warmup (page-in, allocator steady state)
  runtime::LoadReport plain = run_arm(false);
  runtime::LoadReport armed = run_arm(true);
  double overhead = (plain.qps - armed.qps) / plain.qps * 100.0;
  std::printf("  plain engine            %10.1f qps\n", plain.qps);
  std::printf("  fault-tolerant, 0 faults%10.1f qps\n", armed.qps);
  std::printf("  happy-path overhead     %10.2f %%  (target < 2%%)\n",
              overhead);
  return 0;
}
