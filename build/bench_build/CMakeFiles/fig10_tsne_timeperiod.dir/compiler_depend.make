# Empty compiler generated dependencies file for fig10_tsne_timeperiod.
# This may be replaced when dependencies are built.
