#include "nn/init.h"

#include <cmath>

namespace basm::nn {

Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng& rng) {
  float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::Uniform({fan_in, fan_out}, -limit, limit, rng);
}

Tensor HeNormal(int64_t fan_in, int64_t fan_out, Rng& rng) {
  float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::Normal({fan_in, fan_out}, 0.0f, stddev, rng);
}

Tensor EmbeddingInit(int64_t vocab, int64_t dim, Rng& rng, float stddev) {
  return Tensor::Normal({vocab, dim}, 0.0f, stddev, rng);
}

}  // namespace basm::nn
