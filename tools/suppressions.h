#ifndef BASM_TOOLS_SUPPRESSIONS_H_
#define BASM_TOOLS_SUPPRESSIONS_H_

#include <string>
#include <vector>

namespace basm::lint {

/// One declarative exemption: `rule` is exempt in any file whose path
/// contains `path_substring`. Parsed from the checked-in conf files
/// (tools/allowlist.conf for basm_lint, tools/analyze_baseline.conf for
/// basm_analyze), so adding an exemption is a data edit, not a C++ edit.
struct SuppressEntry {
  std::string rule;
  std::string path_substring;
  /// Free-text justification (the rest of the conf line). Required by
  /// convention: an exemption without a why does not survive review.
  std::string reason;
};

/// Parses the conf format: one `<rule> <path-substring> <justification...>`
/// entry per line; blank lines and lines starting with '#' are skipped.
std::vector<SuppressEntry> ParseSuppressions(const std::string& content);

/// Reads and parses `path`. Returns false (and clears *out) when the file
/// cannot be read — callers decide whether a missing table is an error.
bool LoadSuppressionsFile(const std::string& path,
                          std::vector<SuppressEntry>* out);

/// True when some entry exempts `rule` for `path`.
bool SuppressionsMatch(const std::vector<SuppressEntry>& entries,
                       const std::string& rule, const std::string& path);

/// The linter's path allowlist, loaded once per process. Resolution order:
/// $BASM_ALLOWLIST, then BASM_SOURCE_DIR/tools/allowlist.conf (compiled-in
/// source root, set by the build), then ./tools/allowlist.conf. A missing
/// file yields an empty table (every rule applies everywhere).
const std::vector<SuppressEntry>& LintPathAllowlist();

}  // namespace basm::lint

#endif  // BASM_TOOLS_SUPPRESSIONS_H_
