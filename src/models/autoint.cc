#include "models/autoint.h"

namespace basm::models {

namespace ag = ::basm::autograd;

AutoInt::AutoInt(const data::Schema& schema, int64_t embed_dim,
                 int64_t token_dim, int64_t num_layers, int64_t num_heads,
                 Rng& rng)
    : token_dim_(token_dim) {
  encoder_ = std::make_unique<FeatureEncoder>(schema, embed_dim, rng);
  RegisterModule("encoder", encoder_.get());

  std::vector<int64_t> field_dims = {
      encoder_->user_dim(), encoder_->seq_dim(), encoder_->item_dim(),
      encoder_->context_dim(), encoder_->combine_dim()};
  for (size_t i = 0; i < field_dims.size(); ++i) {
    field_proj_.push_back(
        std::make_unique<nn::Linear>(field_dims[i], token_dim, rng));
    RegisterModule("proj" + std::to_string(i), field_proj_.back().get());
  }

  BASM_CHECK_EQ(token_dim % num_heads, 0);
  int64_t head_dim = token_dim / num_heads;
  int64_t dim = token_dim;
  for (int64_t l = 0; l < num_layers; ++l) {
    layers_.push_back(std::make_unique<nn::MultiHeadSelfAttention>(
        dim, num_heads, head_dim, rng));
    RegisterModule("mhsa" + std::to_string(l), layers_.back().get());
    dim = layers_.back()->out_dim();
  }
  out_ = std::make_unique<nn::Linear>(
      FeatureEncoder::kNumFields * dim, 1, rng);
  RegisterModule("out", out_.get());
}

ag::Variable AutoInt::Tokens(const data::Batch& batch) {
  FeatureEncoder::FieldEmbeddings f = encoder_->Encode(batch);
  std::vector<ag::Variable> fields = {f.user, f.seq_pooled, f.item, f.context,
                                      f.combine};
  std::vector<ag::Variable> tokens;
  for (size_t i = 0; i < fields.size(); ++i) {
    tokens.push_back(field_proj_[i]->Forward(fields[i]));  // [B, token_dim]
  }
  // Interleave to [B, F, token_dim]: concat gives [B, F*token], reshape works
  // because fields are concatenated in token order.
  ag::Variable x = ag::Reshape(ag::ConcatCols(tokens),
                               {batch.size, FeatureEncoder::kNumFields,
                                token_dim_});
  for (auto& layer : layers_) {
    x = layer->Forward(x);
  }
  return x;
}

ag::Variable AutoInt::ForwardLogits(const data::Batch& batch) {
  ag::Variable x = Tokens(batch);
  ag::Variable flat =
      ag::Reshape(x, {batch.size, x.value().dim(1) * x.value().dim(2)});
  return ag::Reshape(out_->Forward(flat), {batch.size});
}

ag::Variable AutoInt::FinalRepresentation(const data::Batch& batch) {
  ag::Variable x = Tokens(batch);
  return ag::Reshape(x, {batch.size, x.value().dim(1) * x.value().dim(2)});
}

}  // namespace basm::models
