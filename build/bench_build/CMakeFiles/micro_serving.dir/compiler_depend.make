# Empty compiler generated dependencies file for micro_serving.
# This may be replaced when dependencies are built.
