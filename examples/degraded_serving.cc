// Graceful-degradation walk-through: the serving stack under a feature-
// dependency outage, now with the sharded feature store's stale fallback
// and write-ahead click journal. A fault-tolerant pipeline (retry +
// backoff, circuit breaker) serves four phases of closed-loop traffic:
// healthy (the store caches every user's last-known behavior window and
// journals every click before applying it), with the feature dependency
// killed mid-load (slates keep rendering from *stale* windows — real but
// old behavior instead of the empty window a cacheless stack would serve,
// and never older than the configured TTL budget), after the dependency
// recovers (the breaker closes, fetches go fresh again), and finally a
// process crash: the "restarted" stack replays the click journal and picks
// up every click the dead process had acknowledged.

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "common/circuit_breaker.h"
#include "common/fault.h"
#include "data/synth.h"
#include "feature_store/feature_store.h"
#include "core/model_zoo.h"
#include "runtime/load_generator.h"
#include "runtime/serving_engine.h"
#include "feature_store/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

using namespace basm;

namespace {

void PrintPhase(const char* name, const runtime::LoadReport& report,
                const runtime::LatencySnapshot& window,
                const CircuitBreaker& breaker) {
  std::printf("\n== %s ==\n%s\n", name, report.ToString().c_str());
  std::printf("window: retries %lld, degraded %lld (stale %lld, empty "
              "%lld), breaker opens %lld\n",
              static_cast<long long>(window.retries),
              static_cast<long long>(window.degraded),
              static_cast<long long>(window.degraded_stale),
              static_cast<long long>(window.degraded_empty),
              static_cast<long long>(window.breaker_opens));
  CircuitBreaker::Stats stats = breaker.stats();
  std::printf("breaker: %s (opens %lld, short-circuits %lld, closes %lld)\n",
              CircuitBreaker::StateName(breaker.state()),
              static_cast<long long>(stats.opens),
              static_cast<long long>(stats.short_circuits),
              static_cast<long long>(stats.closes));
}

void PrintStoreCounters(const feature_store::FeatureStore& store) {
  feature_store::FeatureStoreStats s = store.stats();
  std::printf("store: %lld windows cached, %lld fresh fetches, %lld "
              "failures, stale hits %lld / misses %lld, evictions %lld\n",
              static_cast<long long>(s.cache_entries),
              static_cast<long long>(s.fresh_fetches),
              static_cast<long long>(s.fetch_failures),
              static_cast<long long>(s.stale_hits),
              static_cast<long long>(s.stale_misses),
              static_cast<long long>(s.evictions));
  if (s.stale_hits > 0 || s.stale_expired > 0) {
    std::printf("staleness: served p50 %lld us / p99 %lld us, expired %lld\n",
                static_cast<long long>(s.served_staleness_p50_micros),
                static_cast<long long>(s.served_staleness_p99_micros),
                static_cast<long long>(s.stale_expired));
  }
  if (s.journal_enabled) {
    std::printf("journal: %lld appends, %lld fsyncs, %lld write failures, "
                "%lld recovered\n",
                static_cast<long long>(s.journal_appends),
                static_cast<long long>(s.journal_fsyncs),
                static_cast<long long>(s.journal_write_failures),
                static_cast<long long>(s.journal_recovered));
  }
}

}  // namespace

int main() {
  data::SynthConfig config = data::SynthConfig::Eleme();
  config.num_users = 500;
  config.num_items = 400;
  config.num_cities = 4;
  data::World world(config);

  feature_store::FeatureServer features(world, world.config().seq_len, 7);
  // The sharded store in front of the raw server: every healthy fetch
  // refreshes the user's last-known window, which becomes the degraded
  // path's fallback when the server goes dark. The journal directory makes
  // every click crash-durable (phase 4 replays it), and the TTL budget caps
  // how old a served fallback window may ever be.
  const std::filesystem::path journal_dir =
      std::filesystem::temp_directory_path() / "basm_degraded_journal";
  std::filesystem::remove_all(journal_dir);
  feature_store::FeatureStoreConfig store_config;
  store_config.journal.dir = journal_dir.string();
  store_config.max_stale_age_micros = 10'000'000;  // 10s staleness budget
  feature_store::FeatureStore store(&features, store_config);
  serving::RecallIndex recall(world);
  auto model =
      core::CreateModel(core::ModelKind::kBasm, world.schema(), 21);
  model->SetTraining(false);
  serving::Pipeline pipeline(world, &store, &recall, model.get(),
                             /*recall_size=*/20, /*expose_k=*/5);

  // Arm the fault path: retries with backoff around the feature fetch, a
  // breaker that opens after 4 consecutive failures and probes every 10ms.
  FaultInjector injector(/*seed=*/42);
  features.SetFaultInjector(&injector);
  CircuitBreakerConfig breaker_config;
  breaker_config.failure_threshold = 4;
  breaker_config.open_micros = 10000;
  CircuitBreaker breaker(breaker_config);
  serving::FeatureFaultPolicy policy;
  policy.retry.max_attempts = 3;
  policy.retry.initial_backoff_micros = 100;
  policy.breaker = &breaker;
  pipeline.EnableFaultTolerance(policy);

  runtime::EngineConfig ec;
  ec.num_workers = 4;
  ec.max_batch_requests = 4;
  ec.max_wait_micros = 200;
  runtime::ServingEngine engine(&pipeline, ec);

  runtime::LoadConfig load;
  load.num_requests = 200;
  load.concurrency = 16;

  // Phase 1: the dependency is healthy — no retries, no degradation, and
  // every served user leaves a last-known window in the store's cache.
  {
    runtime::LoadGenerator generator(world, load);
    runtime::LoadReport report = generator.Run(engine);
    // Healthy traffic clicks: each click is appended to the journal before
    // it touches the live window, so phase 4 can replay it after a crash.
    Rng click_rng(8);
    for (int32_t u = 0; u < 150; ++u) {
      for (const data::BehaviorEvent& ev : world.SampleHistory(u, 2, click_rng)) {
        store.RecordClick(u, ev);
      }
    }
    PrintPhase("healthy", report, engine.IntervalStats(), breaker);
    PrintStoreCounters(store);
  }

  // Phase 2: kill the feature path entirely (every fetch fails). Users
  // seen in phase 1 are served their cached window — degraded *stale*,
  // with a real staleness age — and only never-seen users fall all the
  // way to an empty window. The breaker still opens and sheds the doomed
  // fetches outright.
  {
    FaultSiteConfig outage;
    outage.error_probability = 1.0;
    outage.error_message = "feature store unreachable";
    injector.Configure(feature_store::kFeatureFetchFaultSite, outage);
    runtime::LoadGenerator generator(world, load);
    runtime::LoadReport report = generator.Run(engine);
    PrintPhase("feature dependency down", report, engine.IntervalStats(),
               breaker);
    PrintStoreCounters(store);

    // One request inspected by hand: the store still has user 7's window.
    auto stale = store.LastKnownFeatures(7);
    if (stale.has_value()) {
      std::printf("user 7 last-known window: %zu behaviors, %.1f ms old\n",
                  stale->behaviors.size(),
                  static_cast<double>(stale->age_micros) / 1000.0);
    }
  }

  // Phase 3: the dependency comes back. Half-open probes succeed, the
  // breaker closes, and serving returns to the full-feature (fresh) path.
  {
    injector.Configure(feature_store::kFeatureFetchFaultSite, FaultSiteConfig{});
    runtime::LoadGenerator generator(world, load);
    runtime::LoadReport report = generator.Run(engine);
    PrintPhase("recovered", report, engine.IntervalStats(), breaker);
    PrintStoreCounters(store);
  }

  std::printf("\n== totals ==\n%s", engine.Stats().ToString().c_str());
  engine.Shutdown();

  // Phase 4: the process "crashes" — everything above is gone — and a
  // fresh stack boots over the same journal directory. Replay walks the
  // sealed segments, truncates any torn tail, reapplies every click to the
  // new feature server, and hands each one back for the online-learning
  // feedback queue. No acknowledged click is lost to the crash.
  {
    feature_store::FeatureServer reborn_features(world, world.config().seq_len, 7);
    feature_store::FeatureStore reborn(&reborn_features, store_config);
    int64_t republished = 0;
    feature_store::ReplayReport report;
    Status status = reborn.RecoverFromJournal(
        [&](int32_t /*user*/, const data::BehaviorEvent& /*event*/) {
          ++republished;  // a real deployment feeds these to OnlineTrainer
        },
        &report);
    std::printf("\n== crash, restart, replay ==\n");
    if (!status.ok()) {
      std::printf("recovery failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("replayed %lld clicks from %lld segments "
                "(%lld torn-tail bytes truncated), %lld republished to the "
                "feedback queue\n",
                static_cast<long long>(report.recovered),
                static_cast<long long>(report.segments),
                static_cast<long long>(report.truncated_tail_bytes),
                static_cast<long long>(republished));
    PrintStoreCounters(reborn);
  }
  std::filesystem::remove_all(journal_dir);
  return 0;
}
