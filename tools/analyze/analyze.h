#ifndef BASM_TOOLS_ANALYZE_ANALYZE_H_
#define BASM_TOOLS_ANALYZE_ANALYZE_H_

#include <map>
#include <string>
#include <vector>

#include "tools/lint.h"
#include "tools/suppressions.h"

namespace basm::analyze {

/// Catalog entry for one analysis pass (drives --list-passes and DESIGN
/// §15's table).
struct PassInfo {
  std::string id;
  std::string rationale;
};

/// The four passes, in evaluation order.
std::vector<PassInfo> Passes();

struct AnalyzeOptions {
  /// Pass ids to run; empty means all.
  std::vector<std::string> passes;
  /// Baseline suppressions (same format as tools/allowlist.conf): findings
  /// matching <pass-id, path-substring> are counted but not reported.
  std::vector<lint::SuppressEntry> baseline;
};

struct AnalyzeReport {
  std::vector<lint::Finding> findings;  ///< surviving, sorted file:line
  int files_scanned = 0;
  int suppressed_inline = 0;    ///< dropped by `basm-analyze: allow(...)`
  int suppressed_baseline = 0;  ///< dropped by the baseline file
  std::map<std::string, int> per_pass;  ///< surviving finding counts
};

/// Scans every C++ file under `paths` (directories walked recursively,
/// skipping build trees, VCS metadata, and lint_fixtures; explicit files
/// always scanned) and runs the selected passes.
AnalyzeReport Analyze(const std::vector<std::string>& paths,
                      const AnalyzeOptions& options);

/// Machine-readable report: {"files_scanned":N, "suppressed":{...},
/// "counts":{pass:N,...}, "findings":[{file,line,pass,message},...]}.
std::string ReportJson(const AnalyzeReport& report);

/// Loads the default baseline: $BASM_ANALYZE_BASELINE, then
/// <source>/tools/analyze_baseline.conf, then ./tools/analyze_baseline.conf.
/// A missing file is an empty baseline, not an error.
std::vector<lint::SuppressEntry> DefaultBaseline();

}  // namespace basm::analyze

#endif  // BASM_TOOLS_ANALYZE_ANALYZE_H_
