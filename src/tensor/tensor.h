#ifndef BASM_TENSOR_TENSOR_H_
#define BASM_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "tensor/arena.h"

namespace basm {

/// Dense row-major float32 tensor with value semantics. This is the numeric
/// workhorse under the autograd engine and the layer library. Shapes are
/// arbitrary-rank but the library mostly uses rank 1-3:
///   [n]        vectors (labels, per-row scalars)
///   [m, n]     matrices (activations, weights)
///   [b, t, d]  batched sequences (behavior histories, attention tokens)
class Tensor {
 public:
  /// Empty scalar-less tensor; numel() == 0.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape);

  /// Tensor with explicit contents; `values.size()` must match the shape.
  Tensor(std::vector<int64_t> shape, const std::vector<float>& values);

  /// -- Factories ------------------------------------------------------

  static Tensor Zeros(std::vector<int64_t> shape);
  /// Uninitialized tensor — every element must be overwritten before it is
  /// read. Kernel outputs use this to skip the zero-fill pass.
  static Tensor Uninitialized(std::vector<int64_t> shape);
  static Tensor Ones(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  /// Uniform in [lo, hi).
  static Tensor Uniform(std::vector<int64_t> shape, float lo, float hi,
                        Rng& rng);
  /// Normal(mean, stddev).
  static Tensor Normal(std::vector<int64_t> shape, float mean, float stddev,
                       Rng& rng);
  /// 1-D tensor from values.
  static Tensor FromVector(const std::vector<float>& values);

  /// -- Shape ----------------------------------------------------------

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(int i) const;
  int rank() const { return static_cast<int>(shape_.size()); }
  int64_t numel() const { return data_.size(); }

  /// Rows/cols of a rank-2 tensor (checked).
  int64_t rows() const;
  int64_t cols() const;

  /// Returns a copy with a new shape of identical numel. A dimension of -1
  /// is inferred.
  Tensor Reshape(std::vector<int64_t> new_shape) const;

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// -- Element access --------------------------------------------------

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](int64_t i) { return data_.data()[i]; }
  float operator[](int64_t i) const { return data_.data()[i]; }

  /// Checked 2-D accessors.
  float& at(int64_t r, int64_t c);
  float at(int64_t r, int64_t c) const;

  /// Checked 3-D accessors.
  float& at(int64_t i, int64_t j, int64_t k);
  float at(int64_t i, int64_t j, int64_t k) const;

  /// -- In-place helpers -------------------------------------------------

  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  /// this += other (same shape).
  void AddInPlace(const Tensor& other);
  /// this += scale * other (same shape).
  void AddScaledInPlace(const Tensor& other, float scale);
  /// this *= scale.
  void ScaleInPlace(float scale);

  /// -- Introspection ----------------------------------------------------

  /// Sum / mean / min / max over all elements.
  float Sum() const;
  float Mean() const;
  float Min() const;
  float Max() const;
  /// True if any element is NaN or Inf.
  bool HasNonFinite() const;

  /// Short debug form, e.g. "Tensor[4x8] mean=0.01".
  std::string DebugString() const;

 private:
  struct UninitTag {};
  Tensor(std::vector<int64_t> shape, UninitTag);

  std::vector<int64_t> shape_;
  /// 64-byte-aligned storage: SIMD kernels rely on rows never splitting a
  /// cache line at offset 0, and the serving arena recycles these blocks.
  AlignedBuffer data_;
};

/// Number of elements implied by a shape.
int64_t ShapeNumel(const std::vector<int64_t>& shape);

/// "4x8x16" rendering for error messages.
std::string ShapeToString(const std::vector<int64_t>& shape);

}  // namespace basm

#endif  // BASM_TENSOR_TENSOR_H_
