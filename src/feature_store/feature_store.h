#ifndef BASM_FEATURE_STORE_FEATURE_STORE_H_
#define BASM_FEATURE_STORE_FEATURE_STORE_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/synchronization.h"
#include "data/schema.h"
#include "feature_store/journal.h"
#include "feature_store/feature_server.h"

namespace basm::feature_store {

struct FeatureStoreConfig {
  /// User-hash shards; concurrent requests for different users contend only
  /// when they land on the same shard.
  int32_t num_shards = 8;
  /// Per-shard LRU capacity of the last-known-features cache. 0 disables
  /// the cache entirely (and with it prefetch and stale serving) — the
  /// store then degrades to a thin locking facade over the server.
  int64_t capacity_per_shard = 128;
  /// TTL budget for stale serving: LastKnownFeatures refuses windows older
  /// than this many microseconds (they degrade to empty instead, counted
  /// in stale_expired). 0 = unbounded, the pre-TTL behavior.
  int64_t max_stale_age_micros = 0;
  /// Write-ahead click journal. An empty dir disables journaling (the
  /// pre-journal behavior: clicks since boot die with the process).
  JournalConfig journal;
};

/// Lifetime counters, merged across shards by stats(). The serving engine
/// folds these into every LatencySnapshot export.
struct FeatureStoreStats {
  int64_t fresh_fetches = 0;      ///< successful server round-trips
  int64_t fetch_failures = 0;     ///< failed server round-trips
  int64_t cache_entries = 0;      ///< live LRU entries right now
  int64_t stale_hits = 0;         ///< LastKnownFeatures found a window
  int64_t stale_misses = 0;       ///< LastKnownFeatures found nothing
  int64_t insertions = 0;         ///< new users cached
  int64_t evictions = 0;          ///< LRU entries displaced at capacity
  int64_t prefetch_issued = 0;    ///< Prefetch calls that fetched
  int64_t prefetch_hits = 0;      ///< fetches served from a prefetch
  int64_t prefetch_discarded = 0; ///< prefetches invalidated by a click
  int64_t prefetch_cancelled = 0; ///< prefetches skipped past deadline
  int64_t stale_expired = 0;      ///< stale windows refused by the TTL budget
  /// Served-staleness quantiles over every stale window actually handed
  /// out (quarter-free power-of-two histogram, so values are bucket
  /// midpoints). 0 when no stale window was served yet.
  int64_t served_staleness_p50_micros = 0;
  int64_t served_staleness_p99_micros = 0;
  /// Journal counters (all zero when journaling is off).
  bool journal_enabled = false;
  int64_t journal_appends = 0;
  int64_t journal_fsyncs = 0;
  int64_t journal_write_failures = 0;
  int64_t journal_rotations = 0;
  int64_t journal_recovered = 0;
  int64_t journal_truncated_tail_bytes = 0;
};

/// A last-known behavior window plus how old it is — what a degraded
/// request serves instead of an empty window.
struct StaleFeatures {
  std::vector<data::BehaviorEvent> behaviors;
  int64_t age_micros = 0;
};

/// Sharded concurrent facade over the ABFS FeatureServer — the hot-path
/// feature tier. Each user hashes to one shard guarded by its own
/// basm::Mutex; a per-shard LRU keeps the *last known* behavior window of
/// recently served users so the fault-tolerant path can degrade to stale
/// features (real but old behavior) instead of an empty window, and an
/// async prefetch path lets the serving engine overlap the next
/// micro-batch's lookups with scoring of the current one.
///
/// Consistency contract: all click writes must flow through RecordClick on
/// the store (not the raw server), which bumps the user's version and so
/// invalidates any in-flight prefetch of a pre-click window. A consumed
/// prefetch is therefore always bit-identical to a synchronous fetch at
/// consume time — the happy path never serves a window the server would
/// not have returned.
///
/// The raw fallible fetch (FeatureServer::FetchUserFeatures, where the
/// FaultInjector site lives) is reachable only through this facade on the
/// serving path; basm_lint's feature-fetch-outside-store rule enforces it.
class FeatureStore {
 public:
  /// The server is borrowed and must outlive the store.
  explicit FeatureStore(feature_store::FeatureServer* server,
                        FeatureStoreConfig config = {});

  FeatureStore(const FeatureStore&) = delete;
  FeatureStore& operator=(const FeatureStore&) = delete;

  /// Infallible in-process lookup (CHECKs on bad ids, like the server's
  /// GetUserFeatures). Consumes a version-valid prefetched window when one
  /// is parked, else round-trips to the server; either way the result is
  /// bit-identical to the server's current window, and the LRU cache is
  /// refreshed with it.
  feature_store::FeatureServer::UserFeatures GetFeatures(int32_t user_id);

  /// The fallible "RPC" fetch the retry/breaker loop calls. Consumes a
  /// version-valid prefetched window without touching the server;
  /// otherwise performs exactly one server fetch (evaluating the
  /// feature_server.fetch fault site). Success refreshes the cache;
  /// failure surfaces the Status verbatim and leaves the last-known
  /// window untouched for LastKnownFeatures.
  [[nodiscard]] StatusOr<feature_store::FeatureServer::UserFeatures> FetchFeatures(
      int32_t user_id);

  /// The degraded fallback: the user's last successfully fetched window
  /// with its staleness age, or nullopt if the user was never cached (or
  /// was evicted). Read-only — does not touch LRU recency, so probing a
  /// dead dependency's fallback never perturbs eviction order.
  ///
  /// TTL: when config().max_stale_age_micros > 0, a window older than the
  /// budget is refused (nullopt, `*expired` set, stale_expired counted) —
  /// the fallback ladder is fresh → stale-within-budget → empty, never
  /// arbitrarily-old. Windows actually served are recorded into the
  /// served-staleness histogram behind the p50/p99 stats.
  std::optional<StaleFeatures> LastKnownFeatures(int32_t user_id,
                                                 bool* expired = nullptr);

  /// Forwards a click to the server under the user's shard lock and bumps
  /// the user's version, invalidating any prefetched pre-click window.
  /// Deliberately does NOT update the cached window: the cache holds what
  /// was last *fetched*, so staleness is honest.
  ///
  /// Write-ahead discipline: with journaling on, the click is appended to
  /// the journal *before* it is applied; if the append fails (real IO or
  /// the feature_store.journal fault site) the click is dropped entirely —
  /// counted in journal_write_failures, never applied half-durably, and
  /// never an error the request sees.
  void RecordClick(int32_t user_id, const data::BehaviorEvent& event);

  /// Startup-only: replays every intact journaled click (sealed segments,
  /// oldest first) back into the server — same shard-lock + version-bump
  /// path as a live RecordClick — truncating a torn tail at the first bad
  /// checksum instead of failing. `republish` (may be null) is invoked for
  /// each recovered click so the caller can refeed the OnlineTrainer
  /// feedback queue; `report` (may be null) receives the replay counts.
  /// A disabled journal is an OK no-op. Never call concurrently with live
  /// RecordClicks: recovery happens before serving starts.
  [[nodiscard]] Status RecoverFromJournal(
      const std::function<void(int32_t, const data::BehaviorEvent&)>&
          republish = nullptr,
      ReplayReport* report = nullptr);

  /// Async-prefetch body (run on the engine's prefetch pool): fetches the
  /// user's window and parks it in the cache entry, tagged with the
  /// user's current version, for the next GetFeatures/FetchFeatures to
  /// consume without a server round-trip. A deadline already in the past
  /// cancels without fetching. Returns true when a window was parked.
  bool Prefetch(int32_t user_id,
                std::chrono::steady_clock::time_point deadline);

  /// Counters merged across shards (cache_entries is the live total).
  FeatureStoreStats stats() const;

  const FeatureStoreConfig& config() const { return config_; }
  feature_store::FeatureServer* server() const { return server_; }
  /// True when the LRU (and so stale serving + prefetch) is enabled.
  bool cache_enabled() const { return config_.capacity_per_shard > 0; }
  /// True when clicks are journaled (config().journal.dir non-empty).
  bool journal_enabled() const { return journal_ != nullptr; }
  /// The underlying journal, or nullptr when journaling is off (exposed
  /// for tests and the fault-injection hookup).
  ClickJournal* journal() const { return journal_.get(); }

  /// Shard index of a user (public for the shard-spread test).
  int32_t ShardOf(int32_t user_id) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    int32_t user_id = 0;
    std::vector<data::BehaviorEvent> behaviors;
    Clock::time_point fetched_at;
    /// A prefetched window is parked here until consumed or invalidated.
    bool prefetch_fresh = false;
    uint64_t prefetch_version = 0;
  };

  static constexpr int kStalenessBuckets = 64;

  /// One shard: LRU list (front = most recently fetched) plus a user
  /// index into it, and the per-user version counters that guard
  /// prefetch consumption. Buffers in evicted Entry slots are reused via
  /// assign(), so a warm shard stops hitting the allocator.
  struct Shard {
    mutable Mutex mu;
    std::list<Entry> lru BASM_GUARDED_BY(mu);
    std::unordered_map<int32_t, std::list<Entry>::iterator> index
        BASM_GUARDED_BY(mu);
    std::unordered_map<int32_t, uint64_t> versions BASM_GUARDED_BY(mu);
    int64_t fresh_fetches BASM_GUARDED_BY(mu) = 0;
    int64_t fetch_failures BASM_GUARDED_BY(mu) = 0;
    int64_t stale_hits BASM_GUARDED_BY(mu) = 0;
    int64_t stale_misses BASM_GUARDED_BY(mu) = 0;
    int64_t insertions BASM_GUARDED_BY(mu) = 0;
    int64_t evictions BASM_GUARDED_BY(mu) = 0;
    int64_t prefetch_issued BASM_GUARDED_BY(mu) = 0;
    int64_t prefetch_hits BASM_GUARDED_BY(mu) = 0;
    int64_t prefetch_discarded BASM_GUARDED_BY(mu) = 0;
    int64_t prefetch_cancelled BASM_GUARDED_BY(mu) = 0;
    int64_t stale_expired BASM_GUARDED_BY(mu) = 0;
    /// Power-of-two histogram of served-staleness ages (bucket = bit width
    /// of the age in micros); merged across shards for the p50/p99 stats.
    std::array<int64_t, kStalenessBuckets> staleness_hist
        BASM_GUARDED_BY(mu) = {};
  };

  /// Histogram bucket of a served-staleness age, and the representative
  /// age of a bucket (its midpoint) — the resolution behind the p50/p99.
  static int StalenessBucket(int64_t age_micros);
  static int64_t StalenessBucketValue(int bucket);

  /// Moves the user's entry to the LRU front with `behaviors` as the new
  /// window (inserting/evicting as needed). Caller holds the shard lock.
  void RefreshLocked(Shard& shard, int32_t user_id,
                     const std::vector<data::BehaviorEvent>& behaviors)
      BASM_REQUIRES(shard.mu);

  /// Consumes a version-valid parked prefetch into *out; false when there
  /// is none (or a click invalidated it, which counts a discard).
  bool ConsumePrefetchLocked(Shard& shard, int32_t user_id,
                             feature_store::FeatureServer::UserFeatures* out)
      BASM_REQUIRES(shard.mu);

  feature_store::FeatureServer* server_;
  FeatureStoreConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Non-null iff config_.journal.dir is non-empty.
  std::unique_ptr<ClickJournal> journal_;
};

}  // namespace basm::feature_store

#endif  // BASM_FEATURE_STORE_FEATURE_STORE_H_
