#ifndef BASM_CORE_STSTL_H_
#define BASM_CORE_STSTL_H_

#include <memory>

#include "nn/dynamic.h"
#include "nn/module.h"

namespace basm::core {

/// Spatiotemporal Semantic Transformation Layer (Section II-C). A meta
/// network consumes [h_c ; h_ui] — the spatiotemporal context embedding and
/// the spatiotemporally-filtered behavior embedding — and emits per-sample
/// dynamic parameters (W_stl, b_stl) that map the raw concatenated semantic
/// h_hat into the spatiotemporal semantic h* (Eq. 7-9).
///
/// The dynamic weight W_stl is decomposed as a full-width static base plus
/// a low-rank spatiotemporal correction, W_stl = W_base + U S(cond) V (the
/// "matrix decomposition method" the paper credits for BASM's lower cost vs
/// other dynamic-parameter models in Table VI). The static base keeps the
/// raw semantic intact at initialization; the generated core S adapts the
/// mapping per spatiotemporal context.
class StSTL : public nn::Module {
 public:
  StSTL(int64_t input_dim, int64_t ctx_dim, int64_t behavior_dim,
        int64_t out_dim, int64_t rank, Rng& rng);

  /// h_hat: [B, input_dim]; h_c: [B, ctx_dim]; h_ui: [B, behavior_dim].
  autograd::Variable Forward(const autograd::Variable& h_hat,
                             const autograd::Variable& h_c,
                             const autograd::Variable& h_ui) const;

  int64_t out_dim() const { return out_dim_; }

 private:
  int64_t out_dim_;
  std::unique_ptr<nn::Linear> base_;
  std::unique_ptr<nn::LowRankMetaLinear> dynamic_;
};

}  // namespace basm::core

#endif  // BASM_CORE_STSTL_H_
