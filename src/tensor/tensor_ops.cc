#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

namespace basm::ops {

namespace {

/// Inner kernel: C(m,n) += A(m,k) * B(k,n) over raw pointers, i-k-j order so
/// the innermost loop streams both B and C rows.
void GemmAccumulate(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      float av = a_row[p];
      if (av == 0.0f) continue;
      const float* b_row = b + p * n;
      for (int64_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
    }
  }
}

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  BASM_CHECK(a.SameShape(b)) << op << ": " << ShapeToString(a.shape())
                             << " vs " << ShapeToString(b.shape());
}

/// Broadcast vector length check: b may be [n] or [1,n].
int64_t BroadcastLen(const Tensor& b) {
  if (b.rank() == 1) return b.dim(0);
  BASM_CHECK_EQ(b.rank(), 2);
  BASM_CHECK_EQ(b.dim(0), 1);
  return b.dim(1);
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 2);
  BASM_CHECK_EQ(b.rank(), 2);
  BASM_CHECK_EQ(a.cols(), b.rows())
      << ShapeToString(a.shape()) << " x " << ShapeToString(b.shape());
  Tensor c({a.rows(), b.cols()});
  GemmAccumulate(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.cols());
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 2);
  BASM_CHECK_EQ(b.rank(), 2);
  BASM_CHECK_EQ(a.rows(), b.rows());
  int64_t m = a.rows(), k = a.cols(), n = b.cols();
  Tensor c({k, n});
  // C(k,n) += A^T(k,m) * B(m,n): iterate rows of A/B together.
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a.data() + i * k;
    const float* b_row = b.data() + i * n;
    for (int64_t p = 0; p < k; ++p) {
      float av = a_row[p];
      if (av == 0.0f) continue;
      float* c_row = c.data() + p * n;
      for (int64_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
    }
  }
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 2);
  BASM_CHECK_EQ(b.rank(), 2);
  BASM_CHECK_EQ(a.cols(), b.cols());
  int64_t m = a.rows(), k = a.cols(), n = b.rows();
  Tensor c({m, n});
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a.data() + i * k;
    float* c_row = c.data() + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* b_row = b.data() + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] = acc;
    }
  }
  return c;
}

Tensor BatchedMatMul(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 3);
  BASM_CHECK_EQ(b.rank(), 3);
  BASM_CHECK_EQ(a.dim(0), b.dim(0));
  BASM_CHECK_EQ(a.dim(2), b.dim(1));
  int64_t bs = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(2);
  Tensor c({bs, m, n});
  for (int64_t i = 0; i < bs; ++i) {
    GemmAccumulate(a.data() + i * m * k, b.data() + i * k * n,
                   c.data() + i * m * n, m, k, n);
  }
  return c;
}

Tensor BatchedMatMulTransA(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 3);
  BASM_CHECK_EQ(b.rank(), 3);
  BASM_CHECK_EQ(a.dim(0), b.dim(0));
  BASM_CHECK_EQ(a.dim(1), b.dim(1));
  int64_t bs = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(2);
  Tensor c({bs, k, n});
  for (int64_t bi = 0; bi < bs; ++bi) {
    const float* ab = a.data() + bi * m * k;
    const float* bb = b.data() + bi * m * n;
    float* cb = c.data() + bi * k * n;
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t p = 0; p < k; ++p) {
        float av = ab[i * k + p];
        if (av == 0.0f) continue;
        for (int64_t j = 0; j < n; ++j) cb[p * n + j] += av * bb[i * n + j];
      }
    }
  }
  return c;
}

Tensor BatchedMatMulTransB(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 3);
  BASM_CHECK_EQ(b.rank(), 3);
  BASM_CHECK_EQ(a.dim(0), b.dim(0));
  BASM_CHECK_EQ(a.dim(2), b.dim(2));
  int64_t bs = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(1);
  Tensor c({bs, m, n});
  for (int64_t bi = 0; bi < bs; ++bi) {
    const float* ab = a.data() + bi * m * k;
    const float* bb = b.data() + bi * n * k;
    float* cb = c.data() + bi * m * n;
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += ab[i * k + p] * bb[j * k + p];
        cb[i * n + j] = acc;
      }
    }
  }
  return c;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  Tensor c = a;
  c.AddInPlace(b);
  return c;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  Tensor c = a;
  c.AddScaledInPlace(b, -1.0f);
  return c;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  Tensor c = a;
  for (int64_t i = 0; i < c.numel(); ++i) c[i] *= b[i];
  return c;
}

Tensor Div(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Div");
  Tensor c = a;
  for (int64_t i = 0; i < c.numel(); ++i) c[i] /= b[i];
  return c;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor c = a;
  c.ScaleInPlace(s);
  return c;
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor c = a;
  for (int64_t i = 0; i < c.numel(); ++i) c[i] += s;
  return c;
}

Tensor Map(const Tensor& a, const std::function<float(float)>& fn) {
  Tensor c = a;
  for (int64_t i = 0; i < c.numel(); ++i) c[i] = fn(c[i]);
  return c;
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 2);
  int64_t n = BroadcastLen(b);
  BASM_CHECK_EQ(a.cols(), n);
  Tensor c = a;
  for (int64_t i = 0; i < a.rows(); ++i) {
    float* row = c.data() + i * n;
    for (int64_t j = 0; j < n; ++j) row[j] += b[j];
  }
  return c;
}

Tensor MulRowBroadcast(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 2);
  int64_t n = BroadcastLen(b);
  BASM_CHECK_EQ(a.cols(), n);
  Tensor c = a;
  for (int64_t i = 0; i < a.rows(); ++i) {
    float* row = c.data() + i * n;
    for (int64_t j = 0; j < n; ++j) row[j] *= b[j];
  }
  return c;
}

Tensor AddColBroadcast(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 2);
  int64_t m = (b.rank() == 1) ? b.dim(0) : b.dim(0) * b.dim(1);
  BASM_CHECK_EQ(a.rows(), m);
  Tensor c = a;
  int64_t n = a.cols();
  for (int64_t i = 0; i < m; ++i) {
    float* row = c.data() + i * n;
    for (int64_t j = 0; j < n; ++j) row[j] += b[i];
  }
  return c;
}

Tensor MulColBroadcast(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 2);
  int64_t m = (b.rank() == 1) ? b.dim(0) : b.dim(0) * b.dim(1);
  BASM_CHECK_EQ(a.rows(), m);
  Tensor c = a;
  int64_t n = a.cols();
  for (int64_t i = 0; i < m; ++i) {
    float* row = c.data() + i * n;
    for (int64_t j = 0; j < n; ++j) row[j] *= b[i];
  }
  return c;
}

Tensor Sigmoid(const Tensor& a) {
  return Map(a, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
}

Tensor Tanh(const Tensor& a) {
  return Map(a, [](float v) { return std::tanh(v); });
}

Tensor Relu(const Tensor& a) {
  return Map(a, [](float v) { return v > 0.0f ? v : 0.0f; });
}

Tensor LeakyRelu(const Tensor& a, float alpha) {
  return Map(a, [alpha](float v) { return v > 0.0f ? v : alpha * v; });
}

Tensor Exp(const Tensor& a) {
  return Map(a, [](float v) { return std::exp(v); });
}

Tensor Log(const Tensor& a, float floor) {
  return Map(a, [floor](float v) { return std::log(std::max(v, floor)); });
}

Tensor Sqrt(const Tensor& a) {
  return Map(a, [](float v) { return std::sqrt(v); });
}

Tensor SumAll(const Tensor& a) { return Tensor({1}, {a.Sum()}); }

Tensor RowSum(const Tensor& a) {
  BASM_CHECK_EQ(a.rank(), 2);
  Tensor c({a.rows(), 1});
  for (int64_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    const float* row = a.data() + i * a.cols();
    for (int64_t j = 0; j < a.cols(); ++j) acc += row[j];
    c[i] = static_cast<float>(acc);
  }
  return c;
}

Tensor ColSum(const Tensor& a) {
  BASM_CHECK_EQ(a.rank(), 2);
  Tensor c({1, a.cols()});
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* row = a.data() + i * a.cols();
    for (int64_t j = 0; j < a.cols(); ++j) c[j] += row[j];
  }
  return c;
}

Tensor ColMean(const Tensor& a) {
  BASM_CHECK_GT(a.rows(), 0);
  Tensor c = ColSum(a);
  c.ScaleInPlace(1.0f / static_cast<float>(a.rows()));
  return c;
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  BASM_CHECK(!parts.empty());
  int64_t rows = parts[0].rows();
  int64_t total_cols = 0;
  for (const Tensor& p : parts) {
    BASM_CHECK_EQ(p.rank(), 2);
    BASM_CHECK_EQ(p.rows(), rows);
    total_cols += p.cols();
  }
  Tensor c({rows, total_cols});
  int64_t offset = 0;
  for (const Tensor& p : parts) {
    for (int64_t i = 0; i < rows; ++i) {
      std::copy(p.data() + i * p.cols(), p.data() + (i + 1) * p.cols(),
                c.data() + i * total_cols + offset);
    }
    offset += p.cols();
  }
  return c;
}

Tensor SliceCols(const Tensor& a, int64_t start, int64_t len) {
  BASM_CHECK_EQ(a.rank(), 2);
  BASM_CHECK_GE(start, 0);
  BASM_CHECK_GE(len, 0);
  BASM_CHECK_LE(start + len, a.cols());
  Tensor c({a.rows(), len});
  for (int64_t i = 0; i < a.rows(); ++i) {
    std::copy(a.data() + i * a.cols() + start,
              a.data() + i * a.cols() + start + len, c.data() + i * len);
  }
  return c;
}

Tensor Transpose(const Tensor& a) {
  BASM_CHECK_EQ(a.rank(), 2);
  Tensor c({a.cols(), a.rows()});
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      c.at(j, i) = a.at(i, j);
    }
  }
  return c;
}

Tensor RowSoftmax(const Tensor& a) {
  BASM_CHECK_EQ(a.rank(), 2);
  Tensor c = a;
  for (int64_t i = 0; i < a.rows(); ++i) {
    float* row = c.data() + i * a.cols();
    float mx = row[0];
    for (int64_t j = 1; j < a.cols(); ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < a.cols(); ++j) {
      row[j] = std::exp(row[j] - mx);
      denom += row[j];
    }
    float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < a.cols(); ++j) row[j] *= inv;
  }
  return c;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "MaxAbsDiff");
  float mx = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    mx = std::max(mx, std::abs(a[i] - b[i]));
  }
  return mx;
}

bool AllClose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (!a.SameShape(b)) return false;
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (std::abs(a[i] - b[i]) > atol + rtol * std::abs(b[i])) return false;
  }
  return true;
}

}  // namespace basm::ops
