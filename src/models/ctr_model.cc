#include "models/ctr_model.h"

#include <cmath>

namespace basm::models {

std::vector<float> CtrModel::PredictProbs(const data::Batch& batch) {
  autograd::Variable logits = ForwardLogits(batch);
  const Tensor& z = logits.value();
  std::vector<float> probs(z.numel());
  for (int64_t i = 0; i < z.numel(); ++i) {
    probs[i] = 1.0f / (1.0f + std::exp(-z[i]));
  }
  return probs;
}

}  // namespace basm::models
