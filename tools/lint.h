#ifndef BASM_TOOLS_LINT_H_
#define BASM_TOOLS_LINT_H_

#include <string>
#include <vector>

namespace basm::lint {

/// One rule violation at a specific source location.
struct Finding {
  std::string file;
  int line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

/// Catalog entry describing one lint rule (drives --list-rules and the
/// DESIGN.md rule table).
struct RuleInfo {
  std::string id;
  std::string rationale;
};

/// The project's invariant catalog, in evaluation order.
std::vector<RuleInfo> Rules();

/// Lints one file's contents. `path` decides which rules apply (header vs
/// source, per-rule path allowlists). Pure: no filesystem access, so tests
/// can feed synthetic content.
std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content);

/// Reads and lints one file from disk.
std::vector<Finding> LintFile(const std::string& path);

/// Lints every C++ file (.h/.hpp/.cc/.cpp) under each path (file or
/// directory). Directory walks skip build trees, VCS metadata, and
/// `lint_fixtures` dirs (intentional-violation test data); explicitly named
/// files are always linted. Results are sorted by file then line.
std::vector<Finding> LintPaths(const std::vector<std::string>& paths);

/// `file:line: rule-id message` — the CI-greppable report line.
std::string FormatFinding(const Finding& finding);

/// Replaces comments and string/char literals with spaces so token scans
/// never fire on prose or quoted text. Stateful across lines for /* */
/// blocks. Include directives keep their <...> payload (it is not a
/// string). Shared with basm_analyze's scanner.
std::string StripLine(const std::string& line, bool* in_block_comment);

/// True when `raw_line` carries `<marker>rule-a,rule-b)` naming `rule` —
/// the inline-suppression grammar behind `basm-lint: allow(...)` and
/// `basm-analyze: allow(...)`.
bool MarkerAllows(const std::string& raw_line, const std::string& marker,
                  const std::string& rule);

}  // namespace basm::lint

#endif  // BASM_TOOLS_LINT_H_
