// Networked serving tier bench: the loopback replica-count sweep behind the
// src/net/ subsystem. A closed-loop client fleet (Zipf users, meal-time
// diurnal hours — the paper's serving context) drives the binary-RPC
// frontend over 1/2/4 ServingEngine replicas behind the consistent-hash
// router, and reports qps, tail latency, shed and degraded counts per
// replica count into the "net" section of BENCH_serving.json. A final
// overload cell (undersized queues, proactive admission control) shows the
// tier shedding instead of collapsing.
//
// Intentionally a plain main() (not google-benchmark): each cell is one
// long closed-loop run whose whole latency distribution is the result,
// which benchmark's stat framework would only obscure.

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/env.h"
#include "data/synth.h"
#include "core/model_zoo.h"
#include "net/client.h"
#include "net/router.h"
#include "net/server.h"
#include "runtime/serving_engine.h"
#include "feature_store/feature_store.h"
#include "feature_store/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

namespace {

using namespace basm;

void AppendJsonNumber(std::ostringstream& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  out << buf;
}

struct CellResult {
  int32_t replicas = 0;
  net::FleetReport fleet;
  net::ServerStats server;
};

/// One sweep cell: boot `num_replicas` engines + router + server on an
/// ephemeral loopback port, run the fleet, tear everything down.
CellResult RunCell(serving::Pipeline* pipeline, int32_t num_replicas,
                   const runtime::EngineConfig& engine_config,
                   const net::ServerConfig& server_config,
                   const net::FleetConfig& fleet_config,
                   const data::World& world) {
  CellResult result;
  result.replicas = num_replicas;

  std::vector<std::unique_ptr<runtime::ServingEngine>> replicas;
  runtime::EngineConfig config = engine_config;
  for (int32_t i = 0; i < num_replicas; ++i) {
    config.seed = 0xBE7C + static_cast<uint64_t>(i);
    replicas.push_back(
        std::make_unique<runtime::ServingEngine>(pipeline, config));
  }
  std::vector<runtime::ServingEngine*> borrowed;
  for (const auto& r : replicas) borrowed.push_back(r.get());

  net::Router router(num_replicas, net::RouterConfig{});
  net::RpcServer server(borrowed, &router, server_config);
  Status started = server.Start();
  if (!started.ok()) {
    std::printf("server start failed: %s\n", started.ToString().c_str());
    return result;
  }

  net::ClientFleet fleet(world, fleet_config);
  StatusOr<net::FleetReport> report = fleet.Run("127.0.0.1", server.port());
  if (report.ok()) result.fleet = report.value();
  result.server = server.stats();
  server.Stop();
  for (auto& r : replicas) r->Shutdown();
  return result;
}

}  // namespace

int main() {
  data::SynthConfig config = data::SynthConfig::Eleme();
  config.num_users = 2000;
  config.num_items = 1500;
  config.num_cities = 8;
  data::World world(config);

  feature_store::FeatureServer features(world, world.config().seq_len, 3);
  feature_store::FeatureStore store(&features);
  serving::RecallIndex recall(world);
  auto model =
      core::CreateModel(core::ModelKind::kBasm, world.schema(), 42);
  model->SetTraining(false);
  serving::Pipeline pipeline(world, &store, &recall, model.get(),
                             /*recall_size=*/24, /*expose_k=*/8);

  net::FleetConfig fleet;
  fleet.num_requests =
      basm::EnvInt("BASM_NET_REQUESTS", basm::FastMode() ? 300 : 3000);
  fleet.num_clients = static_cast<int32_t>(basm::EnvInt("BASM_NET_CLIENTS", 16));

  runtime::EngineConfig engine_config;
  engine_config.num_workers = 2;
  engine_config.max_batch_requests = 4;
  engine_config.max_wait_micros = 200;

  std::printf("networked tier sweep: %lld requests/run, %d clients, "
              "model %s, hardware threads %u\n\n",
              static_cast<long long>(fleet.num_requests), fleet.num_clients,
              model->name().c_str(), std::thread::hardware_concurrency());

  std::ostringstream net_json;
  net_json << "[";
  bool first = true;
  for (int32_t num_replicas : {1, 2, 4}) {
    CellResult cell = RunCell(&pipeline, num_replicas, engine_config,
                              net::ServerConfig{}, fleet, world);
    std::printf("replicas=%d\n%s%s\n", num_replicas,
                cell.fleet.ToString().c_str(),
                cell.server.ToString().c_str());
    if (!first) net_json << ",";
    first = false;
    net_json << "\n    {\"replicas\":" << num_replicas << ",\"qps\":";
    AppendJsonNumber(net_json, cell.fleet.qps);
    net_json << ",\"p50_micros\":";
    AppendJsonNumber(net_json, cell.fleet.p50_micros);
    net_json << ",\"p99_micros\":";
    AppendJsonNumber(net_json, cell.fleet.p99_micros);
    net_json << ",\"ok\":" << cell.fleet.ok
             << ",\"shed\":" << cell.fleet.shed
             << ",\"degraded\":" << cell.fleet.degraded
             << ",\"rehomed_users\":" << cell.fleet.rehomed_users << "}";
  }
  net_json << "\n  ]";

  const std::string json_path =
      basm::EnvString("BASM_BENCH_JSON", "BENCH_serving.json");
  if (basm::bench::UpdateBenchJsonSection(json_path, "net", net_json.str())) {
    std::printf("wrote \"net\" section of %s\n\n", json_path.c_str());
  } else {
    std::printf("FAILED to write %s\n\n", json_path.c_str());
  }

  // Overload demo: queues sized far below the offered closed-loop demand,
  // plus proactive admission control — the tier sheds with UNAVAILABLE
  // instead of letting the backlog (and thus p99) grow without bound.
  {
    runtime::EngineConfig tiny = engine_config;
    tiny.num_workers = 1;
    tiny.queue_capacity = 4;
    net::ServerConfig frontend;
    frontend.shed_queue_fraction = 0.75;
    net::FleetConfig burst = fleet;
    burst.num_requests = std::min<int64_t>(fleet.num_requests, 800);
    burst.num_clients = 32;  // >> queue capacity: overload by construction
    CellResult cell =
        RunCell(&pipeline, /*num_replicas=*/2, tiny, frontend, burst, world);
    std::printf("overload demo (2 replicas, queue 4, 32 clients)\n%s%s\n",
                cell.fleet.ToString().c_str(),
                cell.server.ToString().c_str());
  }
  return 0;
}
