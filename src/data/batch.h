#ifndef BASM_DATA_BATCH_H_
#define BASM_DATA_BATCH_H_

#include <vector>

#include "common/rng.h"
#include "data/schema.h"
#include "tensor/tensor.h"

namespace basm::data {

/// Column-oriented minibatch ready for embedding lookups. Sequence columns
/// are flattened [B*T]; `seq_mask` marks valid positions and
/// `seq_filter_mask` marks positions whose time-period matches the request
/// context (and whose city matches) — the paper's spatiotemporally-filtered
/// behavior u_i consumed by StSTL.
struct Batch {
  int64_t size = 0;
  int64_t seq_len = 0;

  // user field
  std::vector<int32_t> user_id, gender, age_bucket, spend_bucket;
  Tensor user_dense;  // [B, 3]
  // candidate item field
  std::vector<int32_t> item_id, category, brand, price_bucket, position;
  Tensor item_dense;  // [B, 3]
  // spatiotemporal context field
  std::vector<int32_t> hour, time_period, city, geohash, weekday;
  // combine field
  std::vector<int32_t> cross_spend_price, cross_age_category;
  // behavior sequence, flattened row-major [B*T]
  std::vector<int32_t> seq_item, seq_category, seq_brand, seq_time_period,
      seq_city;
  Tensor seq_mask;         // [B, T], 1 = valid
  Tensor seq_filter_mask;  // [B, T], 1 = valid AND spatiotemporally matching

  // labels & grouping metadata
  Tensor labels;  // [B]
  std::vector<int32_t> request_id;
  std::vector<float> gt_prob;
};

/// Assembles a batch from example pointers.
Batch MakeBatch(const std::vector<const Example*>& examples,
                const Schema& schema);

/// Shuffling minibatch iterator over a fixed example list.
class Batcher {
 public:
  Batcher(std::vector<const Example*> examples, const Schema& schema,
          int64_t batch_size, uint64_t shuffle_seed);

  /// Starts a new epoch (reshuffles when shuffle was enabled).
  void Reset();

  /// Fills `batch` with the next minibatch; returns false at epoch end.
  /// The final partial batch is emitted.
  bool Next(Batch* batch);

  int64_t num_examples() const {
    return static_cast<int64_t>(examples_.size());
  }
  int64_t batches_per_epoch() const {
    return (num_examples() + batch_size_ - 1) / batch_size_;
  }

 private:
  std::vector<const Example*> examples_;
  const Schema schema_;
  int64_t batch_size_;
  Rng rng_;
  std::vector<int32_t> order_;
  int64_t cursor_ = 0;
};

}  // namespace basm::data

#endif  // BASM_DATA_BATCH_H_
