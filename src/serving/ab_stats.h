#ifndef BASM_SERVING_AB_STATS_H_
#define BASM_SERVING_AB_STATS_H_

#include <cstdint>

#include "serving/simulator.h"

namespace basm::serving {

/// Result of a two-proportion z-test between the arms of an A/B test.
struct SignificanceResult {
  double z = 0.0;        // signed z statistic (positive = treatment higher)
  double p_value = 1.0;  // two-sided
  bool significant_at_05 = false;
  double lift = 0.0;     // relative CTR improvement of treatment over base
};

/// Two-proportion z-test on click counts: the standard readout used to
/// decide whether an online CTR experiment's lift is real before shipping
/// (the paper reports a week of "strictly online A/B experiments").
SignificanceResult TwoProportionZTest(int64_t base_clicks,
                                      int64_t base_exposures,
                                      int64_t treatment_clicks,
                                      int64_t treatment_exposures);

/// Convenience overload over a finished experiment.
SignificanceResult Significance(const AbTestResult& result);

}  // namespace basm::serving

#endif  // BASM_SERVING_AB_STATS_H_
