file(REMOVE_RECURSE
  "CMakeFiles/model_zoo_tour.dir/model_zoo_tour.cc.o"
  "CMakeFiles/model_zoo_tour.dir/model_zoo_tour.cc.o.d"
  "model_zoo_tour"
  "model_zoo_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_zoo_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
