# Empty compiler generated dependencies file for table7_online_ab.
# This may be replaced when dependencies are built.
