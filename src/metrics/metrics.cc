#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace basm::metrics {

double Auc(const std::vector<float>& scores,
           const std::vector<float>& labels) {
  BASM_CHECK_EQ(scores.size(), labels.size());
  int64_t n = static_cast<int64_t>(scores.size());
  if (n == 0) return 0.5;

  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return scores[a] < scores[b];
  });

  // Midranks over ties, then the Mann-Whitney statistic.
  double pos_rank_sum = 0.0;
  int64_t num_pos = 0;
  int64_t i = 0;
  while (i < n) {
    int64_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    double midrank = 0.5 * static_cast<double>(i + j - 1) + 1.0;  // 1-based
    for (int64_t k = i; k < j; ++k) {
      if (labels[order[k]] > 0.5f) {
        pos_rank_sum += midrank;
        ++num_pos;
      }
    }
    i = j;
  }
  int64_t num_neg = n - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.5;
  double u = pos_rank_sum - static_cast<double>(num_pos) * (num_pos + 1) / 2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

double GroupedAuc(const std::vector<float>& scores,
                  const std::vector<float>& labels,
                  const std::vector<int32_t>& groups) {
  BASM_CHECK_EQ(scores.size(), labels.size());
  BASM_CHECK_EQ(scores.size(), groups.size());
  std::map<int32_t, std::pair<std::vector<float>, std::vector<float>>> split;
  for (size_t i = 0; i < scores.size(); ++i) {
    auto& bucket = split[groups[i]];
    bucket.first.push_back(scores[i]);
    bucket.second.push_back(labels[i]);
  }
  double weighted = 0.0;
  double total = 0.0;
  for (auto& [g, bucket] : split) {
    const auto& s = bucket.first;
    const auto& l = bucket.second;
    bool has_pos = false, has_neg = false;
    for (float y : l) {
      if (y > 0.5f) has_pos = true;
      else has_neg = true;
    }
    if (!has_pos || !has_neg) continue;  // AUC undefined in this group
    double w = static_cast<double>(s.size());
    weighted += w * Auc(s, l);
    total += w;
  }
  return total == 0.0 ? 0.5 : weighted / total;
}

double NdcgAtK(const std::vector<float>& scores,
               const std::vector<float>& labels,
               const std::vector<int32_t>& request_ids, int k) {
  BASM_CHECK_EQ(scores.size(), labels.size());
  BASM_CHECK_EQ(scores.size(), request_ids.size());
  BASM_CHECK_GT(k, 0);

  std::map<int32_t, std::vector<std::pair<float, float>>> requests;
  for (size_t i = 0; i < scores.size(); ++i) {
    requests[request_ids[i]].emplace_back(scores[i], labels[i]);
  }

  double total = 0.0;
  int64_t counted = 0;
  for (auto& [rid, items] : requests) {
    double ideal = 0.0;
    {
      std::vector<float> gains;
      for (auto& [s, y] : items) gains.push_back(y);
      std::sort(gains.begin(), gains.end(), std::greater<float>());
      for (int i = 0; i < std::min<int>(k, gains.size()); ++i) {
        ideal += gains[i] / std::log2(static_cast<double>(i) + 2.0);
      }
    }
    if (ideal <= 0.0) continue;  // no positive in the request
    std::stable_sort(items.begin(), items.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    double dcg = 0.0;
    for (int i = 0; i < std::min<int>(k, items.size()); ++i) {
      dcg += items[i].second / std::log2(static_cast<double>(i) + 2.0);
    }
    total += dcg / ideal;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

double LogLoss(const std::vector<float>& probs,
               const std::vector<float>& labels) {
  BASM_CHECK_EQ(probs.size(), labels.size());
  BASM_CHECK(!probs.empty());
  double acc = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    double p = std::clamp(static_cast<double>(probs[i]), 1e-7, 1.0 - 1e-7);
    acc += labels[i] > 0.5f ? -std::log(p) : -std::log(1.0 - p);
  }
  return acc / static_cast<double>(probs.size());
}

double Ctr(const std::vector<float>& labels) {
  if (labels.empty()) return 0.0;
  double acc = 0.0;
  for (float y : labels) acc += y;
  return acc / static_cast<double>(labels.size());
}

std::map<int32_t, GroupStats> GroupCtr(const std::vector<float>& labels,
                                       const std::vector<int32_t>& groups) {
  BASM_CHECK_EQ(labels.size(), groups.size());
  std::map<int32_t, GroupStats> out;
  for (size_t i = 0; i < labels.size(); ++i) {
    GroupStats& gs = out[groups[i]];
    ++gs.impressions;
    if (labels[i] > 0.5f) ++gs.clicks;
  }
  return out;
}

std::vector<CalibrationBucket> CalibrationTable(
    const std::vector<float>& probs, const std::vector<float>& labels,
    int num_buckets) {
  BASM_CHECK_EQ(probs.size(), labels.size());
  BASM_CHECK_GT(num_buckets, 0);
  std::vector<double> pred_sum(num_buckets, 0.0);
  std::vector<double> label_sum(num_buckets, 0.0);
  std::vector<int64_t> counts(num_buckets, 0);
  for (size_t i = 0; i < probs.size(); ++i) {
    int b = std::min(num_buckets - 1,
                     static_cast<int>(probs[i] * num_buckets));
    b = std::max(b, 0);
    pred_sum[b] += probs[i];
    label_sum[b] += labels[i];
    counts[b]++;
  }
  std::vector<CalibrationBucket> out;
  for (int b = 0; b < num_buckets; ++b) {
    if (counts[b] == 0) continue;
    CalibrationBucket bucket;
    bucket.count = counts[b];
    bucket.mean_predicted = pred_sum[b] / counts[b];
    bucket.observed_ctr = label_sum[b] / counts[b];
    out.push_back(bucket);
  }
  return out;
}

double ExpectedCalibrationError(const std::vector<float>& probs,
                                const std::vector<float>& labels,
                                int num_buckets) {
  auto table = CalibrationTable(probs, labels, num_buckets);
  if (probs.empty()) return 0.0;
  double weighted = 0.0;
  for (const auto& bucket : table) {
    weighted += static_cast<double>(bucket.count) *
                std::abs(bucket.mean_predicted - bucket.observed_ctr);
  }
  return weighted / static_cast<double>(probs.size());
}

EvalSummary Evaluate(const std::vector<float>& probs,
                     const std::vector<float>& labels,
                     const std::vector<int32_t>& time_periods,
                     const std::vector<int32_t>& cities,
                     const std::vector<int32_t>& request_ids) {
  EvalSummary s;
  s.auc = Auc(probs, labels);
  s.tauc = GroupedAuc(probs, labels, time_periods);
  s.cauc = GroupedAuc(probs, labels, cities);
  s.ndcg3 = NdcgAtK(probs, labels, request_ids, 3);
  s.ndcg10 = NdcgAtK(probs, labels, request_ids, 10);
  s.logloss = LogLoss(probs, labels);
  return s;
}

}  // namespace basm::metrics
