#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/synth.h"
#include "feature_store/feature_store.h"
#include "feature_store/journal.h"
#include "gtest/gtest.h"
#include "metrics/metrics.h"
#include "online/model_registry.h"
#include "online/model_slot.h"
#include "online/online_trainer.h"
#include "feature_store/feature_server.h"
#include "serving/recall.h"

namespace basm::feature_store {
namespace {

namespace fs = std::filesystem;

/// Env var that flips this binary into the crash-drill child: a click storm
/// that runs until SIGKILLed. The value is the drill's scratch directory.
constexpr char kChildDirEnv[] = "BASM_CRASH_CHILD_DIR";

/// Same world in the child (click sampling) and the parent (recovery +
/// TAUC arms). The behavior window is boosted to the dominant ranking term,
/// like the stale-vs-empty chaos drill, so the recovered clicks carry
/// measurable ranking value.
data::SynthConfig CrashWorldConfig() {
  data::SynthConfig c = data::SynthConfig::Eleme();
  c.num_users = 120;
  c.num_items = 100;
  c.num_cities = 3;
  c.seq_len = 6;
  c.seq_scale = 3.0f;
  c.affinity_scale = 0.2f;
  c.pop_scale = 0.2f;
  c.price_scale = 0.2f;
  return c;
}

JournalConfig DrillJournalConfig(const std::string& dir) {
  JournalConfig config;
  config.dir = dir + "/journal";
  config.max_segment_bytes = 64 * 1024;  // force a few rotations mid-storm
  return config;
}

/// The child half of the drill. Under ctest this is a skip; exec'd by the
/// parent with the env var set, it becomes a click storm that acks each
/// click to a side file *after* RecordClick returned — so by write-ahead
/// ordering, every acked click's journal record precedes its ack, and a
/// SIGKILL at any instant leaves recovered >= acked.
TEST(CrashRecoveryTest, ChildClickStorm) {
  const char* dir = std::getenv(kChildDirEnv);
  if (dir == nullptr) {
    GTEST_SKIP() << "crash-drill child body; run via the parent drill";
  }
  data::World world(CrashWorldConfig());
  feature_store::FeatureServer server(world, world.config().seq_len, 3);
  FeatureStoreConfig config;
  config.journal = DrillJournalConfig(dir);
  FeatureStore store(&server, config);
  ASSERT_TRUE(store.journal_enabled());
  ASSERT_TRUE(store.journal()->healthy());
  // The drill owns its (empty) fault process even under the chaos CI job's
  // BASM_FAULT_RATE environment: an env-injected append drop would be a
  // legitimately lost click and break the recovered >= acked invariant.
  store.journal()->SetFaultInjector(nullptr);

  const std::string ack_path = std::string(dir) + "/acks";
  std::ofstream acks(ack_path, std::ios::binary | std::ios::app);
  ASSERT_TRUE(acks.good());

  const int32_t users = static_cast<int32_t>(world.config().num_users);
  Rng rng(2026);
  const auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < 5'000'000; ++i) {
    // Bounded storm so an orphaned child (parent died before killing us)
    // exits instead of spinning forever; the parent fails loudly on a
    // normal child exit.
    if ((i & 1023) == 0 &&
        std::chrono::steady_clock::now() - start >
            std::chrono::seconds(60)) {
      break;
    }
    const int32_t user = static_cast<int32_t>(i) % users;
    const data::BehaviorEvent event = world.SampleHistory(user, 1, rng)[0];
    store.RecordClick(user, event);
    // Ack strictly after the append returned: flush the single byte so the
    // parent's poll sees it.
    acks.put('.');
    acks.flush();
  }
}

/// The headline durability drill: fork/exec a child click storm, SIGKILL it
/// mid-flight, corrupt the crashed segment's tail, then recover in-process
/// and assert the crash-drill invariants:
///   - startup never fails: the torn tail is truncated, not fatal;
///   - recovered clicks >= acked clicks (write-ahead ordering);
///   - recovered clicks republish into the OnlineTrainer feedback queue;
///   - a recovered arm ranks at least as well as a cold-start arm (TAUC).
TEST(CrashRecoveryTest, SigkillMidStormRecoversAllAckedClicks) {
  if (std::getenv(kChildDirEnv) != nullptr) {
    GTEST_SKIP() << "already inside the crash-drill child";
  }
  fs::path dir = fs::path(::testing::TempDir()) / "basm_crash_drill";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string dir_str = dir.string();

  pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: become the storm. exec (not just run) so the child is a clean
    // single-threaded process regardless of what this test binary did
    // before forking.
    ::setenv(kChildDirEnv, dir_str.c_str(), 1);
    const char* exe = "/proc/self/exe";
    const char* filter = "--gtest_filter=CrashRecoveryTest.ChildClickStorm";
    char* const argv[] = {const_cast<char*>("crash_child"),
                          const_cast<char*>(filter), nullptr};
    ::execv(exe, argv);
    _exit(127);  // exec failed
  }

  // Poll the ack file until the storm is provably mid-flight, then kill -9.
  const std::string ack_path = dir_str + "/acks";
  const int64_t kMinAcked = 500;
  int64_t polled = 0;
  const auto poll_start = std::chrono::steady_clock::now();
  while (polled < kMinAcked) {
    ASSERT_LT(std::chrono::steady_clock::now() - poll_start,
              std::chrono::seconds(120))
        << "child never reached " << kMinAcked << " acked clicks";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    std::error_code ec;
    uint64_t size = fs::file_size(ack_path, ec);
    if (!ec) polled = static_cast<int64_t>(size);
  }
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited instead of dying mid-storm";
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // Final acked count (bytes the child flushed before dying).
  std::error_code ec;
  const int64_t acked = static_cast<int64_t>(fs::file_size(ack_path, ec));
  ASSERT_FALSE(ec);
  ASSERT_GE(acked, kMinAcked);

  // Make the crash messier than the kernel did: a half-written garbage
  // record on the crashed active segment. Recovery must truncate it, never
  // refuse to start.
  const std::string journal_dir = dir_str + "/journal";
  bool corrupted = false;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(journal_dir)) {
    if (entry.path().string().ends_with(".bjl.open")) {
      std::ofstream torn(entry.path(), std::ios::binary | std::ios::app);
      torn << "GARBAGE-HALF-RECORD";
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted) << "no active segment found to corrupt";

  // "Restart": a fresh server + journaled store over the same directory.
  data::World world(CrashWorldConfig());
  feature_store::FeatureServer recovered_server(world, world.config().seq_len, 3);
  FeatureStoreConfig store_config;
  store_config.journal = DrillJournalConfig(dir_str);
  FeatureStore recovered_store(&recovered_server, store_config);

  // Recovered clicks feed the online-learning loop again, exactly like
  // live clicks would have.
  online::ModelRegistry registry;
  online::ModelSlot slot;
  online::OnlineTrainerConfig trainer_config;
  trainer_config.model_kind = core::ModelKind::kDin;
  trainer_config.feedback_capacity = 1 << 16;
  online::OnlineTrainer trainer(world.schema(), &registry, &slot,
                                trainer_config);
  Rng example_rng(31);
  std::vector<data::Example> republished;
  ReplayReport report;
  Status recovery = recovered_store.RecoverFromJournal(
      [&](int32_t user, const data::BehaviorEvent& event) {
        if (republished.size() >= 1000) return;  // a taste is enough
        republished.push_back(world.MakeExample(
            user, event.item_id, event.hour, /*weekday=*/0, /*position=*/0,
            world.user(user).city, /*day=*/0,
            static_cast<int32_t>(republished.size()), {event}, example_rng));
      },
      &report);
  ASSERT_TRUE(recovery.ok()) << recovery.message();

  // The crash-drill invariants.
  EXPECT_GE(report.recovered, acked)
      << "journal lost acked clicks (recovered " << report.recovered
      << " < acked " << acked << ")";
  EXPECT_GT(report.truncated_tail_bytes, 0)
      << "the garbage tail was not truncated";
  FeatureStoreStats stats = recovered_store.stats();
  EXPECT_TRUE(stats.journal_enabled);
  EXPECT_EQ(stats.journal_recovered, report.recovered);
  EXPECT_EQ(stats.journal_truncated_tail_bytes, report.truncated_tail_bytes);
  const int64_t accepted = trainer.SubmitRecoveredFeedback(republished);
  EXPECT_GT(accepted, 0);
  EXPECT_EQ(trainer.stats().recovered_feedback, accepted);

  // TAUC arms: the recovered server (journal replayed) vs a cold-start
  // server that lost every click. Ground truth is the post-crash state —
  // what the users actually clicked — so recovery must rank >= cold start.
  feature_store::FeatureServer cold_server(world, world.config().seq_len, 3);
  serving::RecallIndex recall(world);
  const int32_t users = static_cast<int32_t>(world.config().num_users);
  std::vector<float> scores_recovered, scores_cold, labels;
  std::vector<int32_t> groups;
  Rng traffic(33);
  Rng label_rng(44);
  for (int32_t r = 0; r < 240; ++r) {
    const int32_t user = r % users;
    const int32_t hour = world.SampleHour(traffic);
    const int32_t city = world.user(user).city;
    std::vector<int32_t> candidates = recall.RecallByCity(city, 12, traffic);
    std::vector<data::BehaviorEvent> truth =
        recovered_server.GetUserFeatures(user).behaviors;
    std::vector<data::BehaviorEvent> cold =
        cold_server.GetUserFeatures(user).behaviors;
    const int32_t tp = static_cast<int32_t>(data::TimePeriodOfHour(hour));
    for (size_t i = 0; i < candidates.size(); ++i) {
      const int32_t item = candidates[i];
      const int32_t position = static_cast<int32_t>(i);
      float p_true =
          world.ClickProbability(user, item, hour, position, city, truth);
      float s_recovered =
          world.ClickProbability(user, item, hour, position, city, truth);
      float s_cold =
          world.ClickProbability(user, item, hour, position, city, cold);
      for (int draw = 0; draw < 4; ++draw) {
        labels.push_back(label_rng.Uniform() < p_true ? 1.0f : 0.0f);
        scores_recovered.push_back(s_recovered);
        scores_cold.push_back(s_cold);
        groups.push_back(tp);
      }
    }
  }
  double tauc_recovered =
      metrics::GroupedAuc(scores_recovered, labels, groups);
  double tauc_cold = metrics::GroupedAuc(scores_cold, labels, groups);
  EXPECT_GE(tauc_recovered, tauc_cold)
      << "recovered TAUC " << tauc_recovered << " vs cold " << tauc_cold;
}

/// Restart-without-crash round trip at the store level: journaled clicks
/// land in a second store over the same directory, and a third boot (after
/// the second already replayed and is journaling its own storm) does not
/// double-count — replay only walks segments sealed before boot.
TEST(CrashRecoveryTest, CleanRestartReplaysOnceAndOnlyOnce) {
  fs::path dir = fs::path(::testing::TempDir()) / "basm_clean_restart";
  fs::remove_all(dir);
  fs::create_directories(dir);
  data::World world(CrashWorldConfig());
  FeatureStoreConfig config;
  config.journal.dir = (dir / "journal").string();

  Rng rng(5);
  {
    feature_store::FeatureServer server(world, world.config().seq_len, 3);
    FeatureStore store(&server, config);
    store.journal()->SetFaultInjector(nullptr);
    for (int32_t u = 0; u < 40; ++u) {
      store.RecordClick(u, world.SampleHistory(u, 1, rng)[0]);
    }
  }
  int64_t second_boot_recovered = 0;
  {
    feature_store::FeatureServer server(world, world.config().seq_len, 3);
    FeatureStore store(&server, config);
    store.journal()->SetFaultInjector(nullptr);
    ReplayReport report;
    ASSERT_TRUE(store.RecoverFromJournal(nullptr, &report).ok());
    second_boot_recovered = report.recovered;
    EXPECT_EQ(second_boot_recovered, 40);
    EXPECT_EQ(report.truncated_tail_bytes, 0);
    // New clicks after recovery journal as usual.
    for (int32_t u = 0; u < 10; ++u) {
      store.RecordClick(u, world.SampleHistory(u, 1, rng)[0]);
    }
  }
  {
    feature_store::FeatureServer server(world, world.config().seq_len, 3);
    FeatureStore store(&server, config);
    ReplayReport report;
    ASSERT_TRUE(store.RecoverFromJournal(nullptr, &report).ok());
    EXPECT_EQ(report.recovered, 50);  // 40 + 10, each exactly once
  }
}

}  // namespace
}  // namespace basm::feature_store
