#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "gtest/gtest.h"

namespace basm {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.Uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(23);
  std::vector<double> w = {1.0, 3.0};
  int hits1 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits1 += rng.Categorical(w) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits1) / n, 0.75, 0.01);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(29);
  auto perm = rng.Permutation(100);
  std::vector<int32_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng parent(31);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(ZipfTest, HeadHeavierThanTail) {
  ZipfTable table(100, 1.1);
  EXPECT_GT(table.Probability(0), table.Probability(50));
  EXPECT_GT(table.Probability(50), table.Probability(99));
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfTable table(50, 0.9);
  double total = 0.0;
  for (int64_t i = 0; i < table.size(); ++i) total += table.Probability(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, SampleFrequencyMatchesProbability) {
  ZipfTable table(10, 1.0);
  Rng rng(37);
  std::vector<int> counts(10, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[table.Sample(rng)]++;
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, table.Probability(i),
                0.01);
  }
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  ZipfTable table(4, 0.0);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(table.Probability(i), 0.25, 1e-9);
  }
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::NotFound("user 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: user 42");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 5;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 5);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::InvalidArgument("bad");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(EnvTest, FallbackWhenUnset) {
  EXPECT_EQ(EnvInt("BASM_DOES_NOT_EXIST_XYZ", 7), 7);
  EXPECT_EQ(EnvString("BASM_DOES_NOT_EXIST_XYZ", "d"), "d");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"Model", "AUC"});
  t.AddRow({"BASM", "0.7373"});
  t.AddRow({"Wide&Deep", "0.7037"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| Model     | AUC    |"), std::string::npos);
  EXPECT_NE(out.find("| BASM      | 0.7373 |"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatting) {
  EXPECT_EQ(TablePrinter::Num(0.7373, 4), "0.7373");
  EXPECT_EQ(TablePrinter::Num(12.0, 1), "12.0");
}

}  // namespace
}  // namespace basm
