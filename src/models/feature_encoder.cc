#include "models/feature_encoder.h"

#include <algorithm>

namespace basm::models {

namespace ag = ::basm::autograd;

FeatureEncoder::FeatureEncoder(const data::Schema& schema, int64_t embed_dim,
                               Rng& rng)
    : embed_dim_(embed_dim) {
  auto make = [&](const char* name, int64_t vocab) {
    auto emb = std::make_unique<nn::Embedding>(vocab, embed_dim_, rng);
    RegisterModule(name, emb.get());
    return emb;
  };
  user_id_ = make("user_id", schema.num_users);
  gender_ = make("gender", schema.num_genders);
  age_ = make("age", schema.num_age_buckets);
  spend_ = make("spend", schema.num_spend_buckets);

  item_id_ = make("item_id", schema.num_items);
  category_ = make("category", schema.num_categories);
  brand_ = make("brand", schema.num_brands);
  price_ = make("price", schema.num_price_buckets);
  position_ = make("position", schema.num_positions);

  hour_ = make("hour", schema.num_hours);
  time_period_ = make("time_period", schema.num_time_periods);
  city_ = make("city", schema.num_cities);
  geohash_ = make("geohash", schema.num_geohash);
  weekday_ = make("weekday", schema.num_weekdays);

  cross_sp_ = make("cross_spend_price", schema.num_cross_spend_price);
  cross_ac_ = make("cross_age_category", schema.num_cross_age_category);
}

FeatureEncoder::FieldEmbeddings FeatureEncoder::Encode(
    const data::Batch& batch) const {
  int64_t b = batch.size;
  int64_t t = batch.seq_len;

  FieldEmbeddings out;
  out.user = ag::ConcatCols({
      user_id_->Forward(batch.user_id),
      gender_->Forward(batch.gender),
      age_->Forward(batch.age_bucket),
      spend_->Forward(batch.spend_bucket),
      ag::Variable::Constant(batch.user_dense),
  });
  out.item = ag::ConcatCols({
      item_id_->Forward(batch.item_id),
      category_->Forward(batch.category),
      brand_->Forward(batch.brand),
      price_->Forward(batch.price_bucket),
      position_->Forward(batch.position),
      ag::Variable::Constant(batch.item_dense),
  });
  out.context = ag::ConcatCols({
      hour_->Forward(batch.hour),
      time_period_->Forward(batch.time_period),
      city_->Forward(batch.city),
      geohash_->Forward(batch.geohash),
      weekday_->Forward(batch.weekday),
  });
  out.combine = ag::ConcatCols({
      cross_sp_->Forward(batch.cross_spend_price),
      cross_ac_->Forward(batch.cross_age_category),
  });

  // Sequence: flattened [B*T] lookups concatenated to [B*T, 5D].
  ag::Variable seq_flat = ag::ConcatCols({
      item_id_->Forward(batch.seq_item),
      category_->Forward(batch.seq_category),
      brand_->Forward(batch.seq_brand),
      time_period_->Forward(batch.seq_time_period),
      city_->Forward(batch.seq_city),
  });
  out.seq = ag::Reshape(seq_flat, {b, t, seq_dim()});

  // Masked mean pooling: weights[b, j] = mask / max(1, #valid).
  auto pool_weights = [&](const Tensor& mask) {
    Tensor w({b, 1, t});
    for (int64_t i = 0; i < b; ++i) {
      float count = 0.0f;
      for (int64_t j = 0; j < t; ++j) count += mask[i * t + j];
      float inv = count > 0.0f ? 1.0f / count : 0.0f;
      for (int64_t j = 0; j < t; ++j) w[i * t + j] = mask[i * t + j] * inv;
    }
    return w;
  };
  out.seq_pooled = ag::Reshape(
      ag::BatchedMatMul(ag::Variable::Constant(pool_weights(batch.seq_mask)),
                        out.seq),
      {b, seq_dim()});
  out.seq_filtered_pooled = ag::Reshape(
      ag::BatchedMatMul(
          ag::Variable::Constant(pool_weights(batch.seq_filter_mask)),
          out.seq),
      {b, seq_dim()});

  // Candidate-as-query in sequence space: the same tables embed the
  // candidate's item/category/brand and the *current* time-period/city.
  out.query = ag::ConcatCols({
      item_id_->Forward(batch.item_id),
      category_->Forward(batch.category),
      brand_->Forward(batch.brand),
      time_period_->Forward(batch.time_period),
      city_->Forward(batch.city),
  });
  return out;
}

}  // namespace basm::models
