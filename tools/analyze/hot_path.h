#ifndef BASM_TOOLS_ANALYZE_HOT_PATH_H_
#define BASM_TOOLS_ANALYZE_HOT_PATH_H_

#include <vector>

#include "tools/analyze/scanner.h"
#include "tools/lint.h"

namespace basm::analyze {

/// Pass `hot-path-alloc`: inside the per-request serving functions
/// (ProcessBatch, ScoreExamples/ScoreRange, the wire decoders) flags heap
/// allocation that bypasses the TensorArena — `new`, malloc-family,
/// make_unique/make_shared — and container growth without a capacity
/// reservation (`push_back`/`emplace_back`/`back_inserter` on a vector
/// that is neither `.reserve()`d, `.resize()`d, nor size-constructed in
/// the same function).
std::vector<lint::Finding> RunHotPath(const std::vector<FileScan>& files);

}  // namespace basm::analyze

#endif  // BASM_TOOLS_ANALYZE_HOT_PATH_H_
