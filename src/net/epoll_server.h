#ifndef BASM_NET_EPOLL_SERVER_H_
#define BASM_NET_EPOLL_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/synchronization.h"
#include "net/event_loop.h"
#include "net/router.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/serving_engine.h"

namespace basm::net {

struct EpollServerConfig {
  /// 0 binds an ephemeral port; read it back with port() after Start().
  uint16_t port = 0;
  /// IO loop threads. Each connection is assigned to one loop (round-robin
  /// at accept) and all its state lives on that loop's thread — the whole
  /// frontend serves thousands of connections on this many threads.
  int32_t num_loops = 2;
  /// Pipelining cap: decoded request frames of one connection that are in
  /// flight (submitted, response not yet queued) beyond this are shed with
  /// UNAVAILABLE — the transport-level analog of the engine's bounded
  /// queue, keeping one greedy pipelined client from monopolizing the tier.
  int32_t max_in_flight_per_connection = 64;
  /// Backpressure: when a connection's un-flushed response bytes exceed
  /// this, its reads pause (EPOLLIN dropped) until the backlog drains below
  /// half — a slow reader throttles itself, never the IO loop or the other
  /// connections on it.
  size_t max_output_backlog_bytes = 1u << 20;
  /// See FrontendConfig.
  double shed_queue_fraction = 0.9;
  int32_t max_failovers = 2;
  /// Kernel send buffer of accepted sockets (SO_SNDBUF); 0 keeps the OS
  /// default. The backpressure tests shrink it so the output backlog grows
  /// deterministically against a non-reading peer.
  int32_t send_buffer_bytes = 0;
};

/// ServerStats plus the counters only the pipelined frontend has.
struct EpollServerStats {
  ServerStats core;
  /// Frames shed by the per-connection in-flight cap.
  int64_t shed_pipeline = 0;
  /// Times a connection's reads were paused on output backlog.
  int64_t backpressure_pauses = 0;

  std::string ToString() const;
};

/// Event-loop RPC frontend (DESIGN §16): the pipelined, readiness-driven
/// sibling of RpcServer. A small pool of IO loop threads (EventLoop over
/// epoll) owns all connections; each connection is a lock-free state
/// machine touched only from its loop thread:
///
///   readable -> accumulate -> decode frames -> FrontendCore::SubmitAsync
///     (many frames in flight, per-connection cap)
///   engine completion (scoring worker) -> PostTask to the owning loop ->
///     encode -> output queue -> flush until EAGAIN -> EPOLLOUT to finish
///
/// Responses complete out of order — the wire sequence number is the
/// correlation id, and the pipelined client demuxes on it. Decode, routing,
/// admission shedding, breaker feeding and failover are FrontendCore, i.e.
/// bit-identical semantics to RpcServer: a corrupt frame still gets a
/// best-effort error response and closes the connection (framing cannot be
/// trusted), queue saturation still sheds without the breaker, and a dead
/// replica still fails over within the budget.
///
/// The engines and router are borrowed and must outlive Stop().
class EpollRpcServer {
 public:
  EpollRpcServer(std::vector<runtime::ServingEngine*> replicas,
                 Router* router, EpollServerConfig config);
  /// Stops and joins (equivalent to Stop()).
  ~EpollRpcServer();

  EpollRpcServer(const EpollRpcServer&) = delete;
  EpollRpcServer& operator=(const EpollRpcServer&) = delete;

  /// Binds the listener (non-blocking, registered on loop 0) and starts
  /// the IO loops. Call once.
  [[nodiscard]] Status Start() BASM_EXCLUDES(lifecycle_mu_);

  /// Stops accepting, waits for in-flight engine submissions to complete,
  /// stops the loops, closes every connection. Idempotent.
  void Stop() BASM_EXCLUDES(lifecycle_mu_);

  /// Bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  EpollServerStats stats() const;

  const EpollServerConfig& config() const { return config_; }

 private:
  struct Connection;  // per-connection state machine (loop-thread-owned)
  struct LoopShard;   // one EventLoop plus the connections it owns

  /// Listener readiness on loop 0: drain TryAccept, assign round-robin.
  void AcceptReady();
  /// Runs on the owning loop's thread; registers the connection for reads.
  void RegisterConnection(LoopShard* shard,
                          std::shared_ptr<TcpConnection> accepted);
  void HandleEvents(LoopShard* shard, const std::shared_ptr<Connection>& c,
                    uint32_t events);
  void HandleReadable(LoopShard* shard, const std::shared_ptr<Connection>& c);
  /// Parses every complete frame in the input buffer; submits or sheds.
  void DrainFrames(LoopShard* shard, const std::shared_ptr<Connection>& c);
  /// Encodes `response`, appends it to the output queue, flushes.
  void QueueResponse(LoopShard* shard, Connection* c,
                     const RpcResponse& response);
  /// Writes until the queue empties or the socket would block; arms or
  /// disarms EPOLLOUT and applies read backpressure accordingly.
  void TryFlush(LoopShard* shard, Connection* c);
  void CloseConnection(LoopShard* shard, Connection* c);
  /// Recomputes and applies the epoll interest mask from the connection
  /// state (reads paused? write pending?).
  void UpdateInterest(LoopShard* shard, Connection* c);
  /// Engine-completion trampoline: may run on any thread; hands the
  /// response to the connection's loop and releases the in-flight slot.
  void OnComplete(LoopShard* shard, std::weak_ptr<Connection> weak,
                  RpcResponse response);

  void IncrementPending() BASM_EXCLUDES(pending_mu_);
  void DecrementPending() BASM_EXCLUDES(pending_mu_);

  FrontendCore core_;
  const EpollServerConfig config_;

  TcpListener listener_;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<LoopShard>> shards_;
  /// Round-robin accept cursor; loop-0 thread only (the accept handler).
  size_t next_shard_ = 0;

  Mutex lifecycle_mu_;
  bool started_ BASM_GUARDED_BY(lifecycle_mu_) = false;
  bool stopped_ BASM_GUARDED_BY(lifecycle_mu_) = false;
  /// Drain flag: accepts stop and newly decoded frames are dropped instead
  /// of submitted, so the pending count can only fall during Stop().
  std::atomic<bool> stop_{false};

  /// Engine submissions whose completion callback has not yet run; Stop
  /// waits for zero so no callback can outlive the server.
  Mutex pending_mu_;
  CondVar pending_zero_;
  int64_t pending_ BASM_GUARDED_BY(pending_mu_) = 0;

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> frames_received_{0};
  std::atomic<int64_t> responses_sent_{0};
  std::atomic<int64_t> decode_errors_{0};
  std::atomic<int64_t> shed_pipeline_{0};
  std::atomic<int64_t> backpressure_pauses_{0};
};

}  // namespace basm::net

#endif  // BASM_NET_EPOLL_SERVER_H_
