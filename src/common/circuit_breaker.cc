#include "common/circuit_breaker.h"

#include <algorithm>

#include "common/logging.h"

namespace basm {

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config)
    : config_(config) {
  BASM_CHECK_GT(config_.failure_threshold, 0);
  BASM_CHECK_GE(config_.open_micros, 0);
  BASM_CHECK_GT(config_.half_open_probes, 0);
  BASM_CHECK_GT(config_.close_after_successes, 0);
}

bool CircuitBreaker::Allow() {
  MutexLock lock(&mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (Clock::now() < open_until_) {
        ++counters_.short_circuits;
        return false;
      }
      // Open window elapsed: move to half-open and admit the first probe.
      state_ = State::kHalfOpen;
      ++counters_.half_opens;
      half_open_inflight_ = 1;
      half_open_successes_ = 0;
      return true;
    case State::kHalfOpen:
      if (half_open_inflight_ < config_.half_open_probes) {
        ++half_open_inflight_;
        return true;
      }
      ++counters_.short_circuits;
      return false;
  }
  return true;  // unreachable
}

void CircuitBreaker::RecordSuccess() {
  MutexLock lock(&mu_);
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kOpen:
      // A straggler admitted before the trip; the open timer decides.
      break;
    case State::kHalfOpen:
      half_open_inflight_ = std::max(0, half_open_inflight_ - 1);
      if (++half_open_successes_ >= config_.close_after_successes) {
        state_ = State::kClosed;
        ++counters_.closes;
        consecutive_failures_ = 0;
        half_open_successes_ = 0;
      }
      break;
  }
}

bool CircuitBreaker::RecordFailure() {
  MutexLock lock(&mu_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        state_ = State::kOpen;
        ++counters_.opens;
        open_until_ =
            Clock::now() + std::chrono::microseconds(config_.open_micros);
        return true;
      }
      return false;
    case State::kOpen:
      return false;
    case State::kHalfOpen:
      // A failed probe: the dependency is still down, reopen immediately.
      state_ = State::kOpen;
      ++counters_.opens;
      half_open_inflight_ = 0;
      half_open_successes_ = 0;
      open_until_ =
          Clock::now() + std::chrono::microseconds(config_.open_micros);
      return true;
  }
  return false;  // unreachable
}

CircuitBreaker::Stats CircuitBreaker::stats() const {
  MutexLock lock(&mu_);
  Stats s = counters_;
  s.state = state_;
  s.consecutive_failures = consecutive_failures_;
  return s;
}

CircuitBreaker::State CircuitBreaker::state() const {
  MutexLock lock(&mu_);
  return state_;
}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace basm
