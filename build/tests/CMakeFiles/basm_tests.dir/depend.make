# Empty dependencies file for basm_tests.
# This may be replaced when dependencies are built.
