#include "models/star.h"

#include "nn/init.h"

namespace basm::models {

namespace ag = ::basm::autograd;

Star::Star(const data::Schema& schema, int64_t embed_dim,
           std::vector<int64_t> hidden, Rng& rng)
    : num_domains_(schema.num_time_periods) {
  encoder_ = std::make_unique<FeatureEncoder>(schema, embed_dim, rng);
  RegisterModule("encoder", encoder_.get());
  attention_ = std::make_unique<nn::TargetAttention>(encoder_->seq_dim(),
                                                     /*hidden=*/32, rng);
  RegisterModule("attention", attention_.get());

  dims_ = {encoder_->concat_dim()};
  dims_.insert(dims_.end(), hidden.begin(), hidden.end());
  for (size_t l = 0; l + 1 < dims_.size(); ++l) {
    StarLayer layer;
    layer.shared_w = RegisterParameter(
        "shared_w" + std::to_string(l),
        nn::XavierUniform(dims_[l], dims_[l + 1], rng));
    layer.shared_b = RegisterParameter("shared_b" + std::to_string(l),
                                       Tensor({1, dims_[l + 1]}));
    for (int64_t d = 0; d < num_domains_; ++d) {
      // Domain factors start at ~1 so the initial effective weight is the
      // shared one (the paper's recommended initialization).
      Tensor ones = Tensor::Ones({dims_[l], dims_[l + 1]});
      Tensor jitter = Tensor::Normal({dims_[l], dims_[l + 1]}, 0.0f, 0.01f,
                                     rng);
      ones.AddInPlace(jitter);
      layer.domain_w.push_back(RegisterParameter(
          "domain_w" + std::to_string(l) + "_" + std::to_string(d),
          std::move(ones)));
      layer.domain_b.push_back(RegisterParameter(
          "domain_b" + std::to_string(l) + "_" + std::to_string(d),
          Tensor({1, dims_[l + 1]})));
    }
    layers_.push_back(std::move(layer));
  }
  out_ = std::make_unique<nn::Linear>(dims_.back(), 1, rng);
  RegisterModule("out", out_.get());
  aux_ = std::make_unique<nn::Linear>(embed_dim, 1, rng);
  RegisterModule("aux", aux_.get());
}

ag::Variable Star::Hidden(const data::Batch& batch) {
  FeatureEncoder::FieldEmbeddings f = encoder_->Encode(batch);
  ag::Variable interest = attention_->Forward(f.query, f.seq, batch.seq_mask);
  ag::Variable h =
      ag::ConcatCols({f.user, interest, f.item, f.context, f.combine});

  // Domain routing masks: one [B,1] column per time-period.
  std::vector<Tensor> masks(num_domains_, Tensor({batch.size, 1}));
  for (int64_t i = 0; i < batch.size; ++i) {
    masks[batch.time_period[i]][i] = 1.0f;
  }

  for (auto& layer : layers_) {
    std::vector<ag::Variable> routed;
    for (int64_t d = 0; d < num_domains_; ++d) {
      // Effective weight = shared ⊙ domain; bias = shared + domain.
      ag::Variable w = ag::Mul(layer.shared_w, layer.domain_w[d]);
      ag::Variable b = ag::Add(layer.shared_b, layer.domain_b[d]);
      ag::Variable y = ag::AddRowBroadcast(ag::MatMul(h, w), b);
      routed.push_back(
          ag::MulColBroadcast(y, ag::Variable::Constant(masks[d])));
    }
    ag::Variable combined = routed[0];
    for (int64_t d = 1; d < num_domains_; ++d) {
      combined = ag::Add(combined, routed[d]);
    }
    h = ag::LeakyRelu(combined, 0.01f);
  }
  return h;
}

ag::Variable Star::ForwardLogits(const data::Batch& batch) {
  ag::Variable h = Hidden(batch);
  ag::Variable main = out_->Forward(h);
  // Auxiliary logit from the time-period embedding alone (STAR's aux net).
  FeatureEncoder::FieldEmbeddings f = encoder_->Encode(batch);
  ag::Variable tp_emb =
      ag::SliceCols(f.context, encoder_->embed_dim(), encoder_->embed_dim());
  ag::Variable aux = aux_->Forward(tp_emb);
  return ag::Reshape(ag::Add(main, aux), {batch.size});
}

ag::Variable Star::FinalRepresentation(const data::Batch& batch) {
  return Hidden(batch);
}

}  // namespace basm::models
