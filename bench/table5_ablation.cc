// Reproduces Table V: ablation of the three BASM modules on the Ele.me-like
// dataset, plus two extension rows ablating the StAEL gate range (the 2x
// sigmoid design choice called out in DESIGN.md).
//
// Expected shape (paper): every "w/o" row is worse than full BASM; removing
// StSTL hurts LogLoss most; removing StABT hurts AUC/TAUC/CAUC most.

#include <cstdio>

#include "common/env.h"
#include "common/table_printer.h"
#include "core/basm_model.h"
#include "data/synth.h"
#include "train/trainer.h"

int main() {
  using namespace basm;
  uint64_t seed = static_cast<uint64_t>(basm::EnvInt("BASM_SEED", 42));
  data::SynthConfig config = data::SynthConfig::Eleme();
  if (basm::FastMode()) config = config.Fast();
  data::Dataset ds = data::GenerateDataset(config);
  std::printf("[table5] module ablation on %s (%zu impressions)\n\n",
              ds.name.c_str(), ds.examples.size());

  struct Row {
    const char* label;
    core::BasmConfig config;
  };
  core::BasmConfig gate1 = core::BasmConfig::Full();
  gate1.gate_scale = 1.0f;  // plain sigmoid gate: can only weaken fields
  std::vector<Row> rows = {
      {"w/o StAEL", core::BasmConfig::WithoutStAEL()},
      {"w/o StSTL", core::BasmConfig::WithoutStSTL()},
      {"w/o StABT", core::BasmConfig::WithoutStABT()},
      {"BASM", core::BasmConfig::Full()},
      {"BASM gate=sigmoid (ext)", gate1},
  };

  TablePrinter table({"Modules", "AUC", "TAUC", "CAUC", "LogLoss"});
  for (const Row& row : rows) {
    Rng rng(seed);
    core::Basm model(ds.schema, row.config, rng);
    train::TrainConfig tc;
    tc.epochs = basm::FastMode() ? 1 : 2;
    train::Fit(model, ds, tc);
    train::EvalResult eval = train::EvaluateOnTest(model, ds);
    table.AddRow({row.label, TablePrinter::Num(eval.summary.auc),
                  TablePrinter::Num(eval.summary.tauc),
                  TablePrinter::Num(eval.summary.cauc),
                  TablePrinter::Num(eval.summary.logloss)});
    std::printf("  finished %s\n", row.label);
  }
  table.Print();
  return 0;
}
