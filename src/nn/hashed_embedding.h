#ifndef BASM_NN_HASHED_EMBEDDING_H_
#define BASM_NN_HASHED_EMBEDDING_H_

#include <memory>
#include <vector>

#include "nn/embedding.h"
#include "nn/module.h"

namespace basm::nn {

/// Feature-hashing embedding: ids of an unbounded (or unknown-at-training)
/// vocabulary are hashed into a fixed number of buckets before lookup. This
/// is how production CTR systems absorb brand-new users/items between model
/// refreshes without retraining the table; collisions trade a little
/// accuracy for a bounded parameter budget.
class HashedEmbedding : public Module {
 public:
  /// `num_buckets` rows of width `dim`; `salt` decorrelates multiple hashed
  /// features that share an id space.
  HashedEmbedding(int64_t num_buckets, int64_t dim, Rng& rng,
                  uint64_t salt = 0);

  /// Looks up hash(id) for each id; ids may be any int64 (negative ids and
  /// ids beyond any training-time vocabulary are valid).
  autograd::Variable Forward(const std::vector<int64_t>& ids) const;

  /// The bucket an id maps to (exposed for tests and collision analysis).
  int64_t Bucket(int64_t id) const;

  int64_t num_buckets() const { return num_buckets_; }
  int64_t dim() const { return dim_; }

 private:
  int64_t num_buckets_;
  int64_t dim_;
  uint64_t salt_;
  std::unique_ptr<Embedding> table_;
};

}  // namespace basm::nn

#endif  // BASM_NN_HASHED_EMBEDDING_H_
