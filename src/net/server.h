#ifndef BASM_NET_SERVER_H_
#define BASM_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/synchronization.h"
#include "common/thread_pool.h"
#include "net/router.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/serving_engine.h"

namespace basm::net {

/// Replica field of a response that never reached any replica.
inline constexpr uint32_t kNoReplica = 0xFFFFFFFFu;

/// Routing/admission knobs shared by both frontends (thread-per-connection
/// RpcServer and the event-loop EpollRpcServer).
struct FrontendConfig {
  /// Admission control: a request whose target replica's backlog is at or
  /// above this fraction of its queue capacity is shed with UNAVAILABLE
  /// before submission — the proactive layer on top of the engine's own
  /// reject-on-full. >= 1.0 disables proactive shedding (the engine's
  /// bounded queue still rejects at capacity).
  double shed_queue_fraction = 0.9;
  /// Dead-replica failover budget: a submit that fails because the replica
  /// is gone (CANCELLED) is re-routed (breaker now open or counting) at
  /// most this many extra times before the error goes back to the client.
  int32_t max_failovers = 2;
};

/// Counters of one server since Start() (all monotonic; snapshot is
/// internally consistent only per-counter, like the latency recorder).
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t frames_received = 0;
  int64_t responses_sent = 0;
  /// Malformed frames (bad magic/version/checksum/bounds): answered with an
  /// error response where possible, and the connection is closed — framing
  /// cannot be trusted after a corrupt frame.
  int64_t decode_errors = 0;
  /// Requests shed by admission control or the replica's full queue.
  int64_t shed = 0;
  /// Requests with no admissible replica (all down / breakers open).
  int64_t unroutable = 0;
  /// Dead-replica submits transparently retried on a survivor.
  int64_t failover_retries = 0;
  std::vector<int64_t> per_replica_ok;
  std::vector<int64_t> per_replica_failed;

  std::string ToString() const;
};

/// The transport-independent core of the serving frontend: route one decoded
/// request (consistent hash + breaker health), admission-shed against the
/// target replica's live queue depth, submit to the engine, and fail dead
/// replicas over — exactly once per request, no matter which transport
/// carried the frame. Both RpcServer (blocking, thread-per-connection) and
/// EpollRpcServer (event loop, pipelined) delegate here, so the shed-vs-dead
/// split and the breaker semantics cannot drift between the two frontends.
///
/// A submit that fails because the replica is dead (engine shut down,
/// CANCELLED) feeds the replica's breaker and fails over to the next ring
/// replica within `max_failovers`; queue-full rejects are shed *without*
/// touching the breaker — overload is not death, and collapsing the two
/// would let a traffic spike evict a healthy replica's shard.
///
/// The engines and router are borrowed and must outlive the core.
class FrontendCore {
 public:
  /// Completion callback: receives the finished response exactly once, on a
  /// scoring worker thread or inline on the submitting thread (shed,
  /// unroutable, or dead-replica reject after the failover budget). Must be
  /// non-blocking: it runs on the engine's scoring workers.
  using ResponseCallback = std::function<void(RpcResponse)>;

  FrontendCore(std::vector<runtime::ServingEngine*> replicas, Router* router,
               FrontendConfig config);

  FrontendCore(const FrontendCore&) = delete;
  FrontendCore& operator=(const FrontendCore&) = delete;

  /// Non-blocking submit: routes, admission-sheds, hands the request to the
  /// replica's engine, and invokes `done` when the slate (or the error) is
  /// ready. Failover re-dispatch happens on whichever thread observed the
  /// dead replica; a dead engine rejects inline, so the recursion depth is
  /// bounded by `max_failovers`.
  void SubmitAsync(const RpcRequest& request, ResponseCallback done);

  /// Blocking convenience for the thread-per-connection path: SubmitAsync
  /// plus a wait for the completion.
  RpcResponse HandleRequestBlocking(const RpcRequest& request);

  /// Adds this core's counters (shed/unroutable/failover/per-replica) into
  /// `stats`; the transport owns the connection/frame counters.
  void FillStats(ServerStats* stats) const;

 private:
  /// One routing attempt with `failovers_left` retries remaining.
  void Dispatch(std::shared_ptr<const RpcRequest> request,
                int32_t failovers_left, ResponseCallback done);

  const std::vector<runtime::ServingEngine*> replicas_;
  Router* router_;
  const FrontendConfig config_;

  struct PerReplica {
    std::atomic<int64_t> ok{0};
    std::atomic<int64_t> failed{0};
  };
  std::vector<std::unique_ptr<PerReplica>> per_replica_;
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> unroutable_{0};
  std::atomic<int64_t> failover_retries_{0};
};

struct ServerConfig {
  /// 0 binds an ephemeral port; read it back with port() after Start().
  uint16_t port = 0;
  /// Connection-handler threads (thread-per-connection): the frontend
  /// serves at most this many concurrent connections; further accepts
  /// queue on the pool.
  int32_t io_threads = 8;
  /// See FrontendConfig.
  double shed_queue_fraction = 0.9;
  int32_t max_failovers = 2;
  /// Stop-flag poll cadence of the acceptor and handler loops.
  int32_t poll_interval_ms = 20;
};

/// TCP frontend of the multi-replica serving tier: a loopback/LAN acceptor
/// (thread-per-connection on common::ThreadPool) speaking the length-
/// prefixed binary protocol of net/wire.h, fronting N independent
/// ServingEngine replicas behind a consistent-hash Router.
///
/// Request path per frame: decode -> FrontendCore (route, admission-shed,
/// submit, failover) -> encode the slate (or the error) back. Connections
/// are handled synchronously (one in-flight request per connection), which
/// matches the closed-loop client fleet; concurrency comes from many
/// connections, micro-batching inside each engine from concurrent arrivals.
/// EpollRpcServer (net/epoll_server.h) is the pipelined event-loop frontend
/// over the same core.
///
/// The engines and router are borrowed and must outlive Stop().
class RpcServer {
 public:
  RpcServer(std::vector<runtime::ServingEngine*> replicas, Router* router,
            ServerConfig config);
  /// Stops and joins (equivalent to Stop()).
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds the listener and starts the acceptor + handler pool. Call once.
  [[nodiscard]] Status Start() BASM_EXCLUDES(lifecycle_mu_);

  /// Stops accepting, drains handler loops, joins everything. Idempotent.
  void Stop() BASM_EXCLUDES(lifecycle_mu_);

  /// Bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  ServerStats stats() const;

  const ServerConfig& config() const { return config_; }

 private:
  void AcceptLoop();
  void HandleConnection(std::shared_ptr<TcpConnection> connection);

  FrontendCore core_;
  const ServerConfig config_;

  TcpListener listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  /// Handler pool plus the acceptor thread; both live between Start/Stop.
  std::unique_ptr<ThreadPool> handlers_;
  Mutex lifecycle_mu_;
  bool started_ BASM_GUARDED_BY(lifecycle_mu_) = false;
  bool stopped_ BASM_GUARDED_BY(lifecycle_mu_) = false;
  std::thread acceptor_ BASM_GUARDED_BY(lifecycle_mu_);

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> frames_received_{0};
  std::atomic<int64_t> responses_sent_{0};
  std::atomic<int64_t> decode_errors_{0};
};

}  // namespace basm::net

#endif  // BASM_NET_SERVER_H_
