#include "metrics/metrics.h"

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace basm::metrics {
namespace {

TEST(AucTest, PerfectRanking) {
  EXPECT_DOUBLE_EQ(Auc({0.1f, 0.4f, 0.8f, 0.9f}, {0, 0, 1, 1}), 1.0);
}

TEST(AucTest, InvertedRanking) {
  EXPECT_DOUBLE_EQ(Auc({0.9f, 0.8f, 0.2f, 0.1f}, {0, 0, 1, 1}), 0.0);
}

TEST(AucTest, RandomScoresNearHalf) {
  Rng rng(1);
  std::vector<float> scores, labels;
  for (int i = 0; i < 20000; ++i) {
    scores.push_back(static_cast<float>(rng.Uniform()));
    labels.push_back(rng.Bernoulli(0.3) ? 1.0f : 0.0f);
  }
  EXPECT_NEAR(Auc(scores, labels), 0.5, 0.02);
}

TEST(AucTest, TiesGetMidrank) {
  // Two ties across classes: AUC should be 0.5 for the tied pair portion.
  double auc = Auc({0.5f, 0.5f}, {1, 0});
  EXPECT_DOUBLE_EQ(auc, 0.5);
}

TEST(AucTest, SingleClassReturnsHalf) {
  EXPECT_DOUBLE_EQ(Auc({0.2f, 0.8f}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(Auc({0.2f, 0.8f}, {0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(Auc({}, {}), 0.5);
}

TEST(AucTest, MatchesPairwiseCounting) {
  Rng rng(2);
  std::vector<float> scores, labels;
  for (int i = 0; i < 200; ++i) {
    scores.push_back(static_cast<float>(rng.Normal()));
    labels.push_back(rng.Bernoulli(0.4) ? 1.0f : 0.0f);
  }
  // O(n^2) reference.
  double wins = 0.0;
  int64_t pairs = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (labels[i] < 0.5f) continue;
    for (size_t j = 0; j < scores.size(); ++j) {
      if (labels[j] > 0.5f) continue;
      ++pairs;
      if (scores[i] > scores[j]) wins += 1.0;
      else if (scores[i] == scores[j]) wins += 0.5;
    }
  }
  EXPECT_NEAR(Auc(scores, labels), wins / pairs, 1e-9);
}

TEST(GroupedAucTest, WeightsByImpressions) {
  // Group 0: 4 samples with AUC 1.0; group 1: 2 samples with AUC 0.0.
  std::vector<float> scores = {0.1f, 0.9f, 0.2f, 0.8f, 0.9f, 0.1f};
  std::vector<float> labels = {0, 1, 0, 1, 0, 1};
  std::vector<int32_t> groups = {0, 0, 0, 0, 1, 1};
  EXPECT_NEAR(GroupedAuc(scores, labels, groups), (4.0 * 1.0 + 2.0 * 0.0) / 6.0,
              1e-9);
}

TEST(GroupedAucTest, SkipsSingleClassGroups) {
  std::vector<float> scores = {0.1f, 0.9f, 0.5f, 0.6f};
  std::vector<float> labels = {0, 1, 1, 1};  // group 1 all-positive
  std::vector<int32_t> groups = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(GroupedAuc(scores, labels, groups), 1.0);
}

TEST(GroupedAucTest, CanExceedGlobalAucUnderSimpsonStructure) {
  // Classic: per-group ranking is perfect but group base rates differ so
  // the pooled AUC is lower — the reason TAUC/CAUC are worth reporting.
  std::vector<float> scores = {0.3f, 0.4f, 0.8f, 0.9f};
  std::vector<float> labels = {0, 1, 0, 1};
  std::vector<int32_t> groups = {0, 0, 1, 1};
  double global = Auc(scores, labels);
  double grouped = GroupedAuc(scores, labels, groups);
  EXPECT_DOUBLE_EQ(grouped, 1.0);
  EXPECT_LT(global, grouped);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  std::vector<float> scores = {0.9f, 0.5f, 0.1f};
  std::vector<float> labels = {1, 0, 0};
  std::vector<int32_t> req = {7, 7, 7};
  EXPECT_NEAR(NdcgAtK(scores, labels, req, 3), 1.0, 1e-9);
}

TEST(NdcgTest, WorstRankingPenalized) {
  std::vector<float> scores = {0.1f, 0.5f, 0.9f};
  std::vector<float> labels = {1, 0, 0};
  std::vector<int32_t> req = {7, 7, 7};
  // positive at rank 3: DCG = 1/log2(4) = 0.5.
  EXPECT_NEAR(NdcgAtK(scores, labels, req, 3), 0.5, 1e-9);
}

TEST(NdcgTest, CutoffKRespected) {
  std::vector<float> scores = {0.9f, 0.8f, 0.7f, 0.1f};
  std::vector<float> labels = {0, 0, 0, 1};
  std::vector<int32_t> req = {1, 1, 1, 1};
  // Positive below the top-3 cut: NDCG3 = 0, NDCG10 > 0.
  EXPECT_NEAR(NdcgAtK(scores, labels, req, 3), 0.0, 1e-9);
  EXPECT_GT(NdcgAtK(scores, labels, req, 10), 0.0);
}

TEST(NdcgTest, AveragesOverRequestsAndSkipsNoPositive) {
  std::vector<float> scores = {0.9f, 0.1f, 0.5f, 0.6f, 0.3f, 0.2f};
  std::vector<float> labels = {1, 0, 0, 0, 1, 0};
  std::vector<int32_t> req = {1, 1, 2, 2, 3, 3};
  // req1 NDCG=1, req2 skipped (no positive), req3 NDCG=1.
  EXPECT_NEAR(NdcgAtK(scores, labels, req, 3), 1.0, 1e-9);
}

TEST(LogLossTest, MatchesClosedForm) {
  double ll = LogLoss({0.8f, 0.3f}, {1, 0});
  EXPECT_NEAR(ll, (-std::log(0.8) - std::log(0.7)) / 2.0, 1e-6);
}

TEST(LogLossTest, ClampsExtremeProbs) {
  double ll = LogLoss({1.0f, 0.0f}, {0, 1});
  EXPECT_TRUE(std::isfinite(ll));
  EXPECT_GT(ll, 10.0);
}

TEST(CtrTest, MeanLabel) {
  EXPECT_DOUBLE_EQ(Ctr({1, 0, 0, 1}), 0.5);
  EXPECT_DOUBLE_EQ(Ctr({}), 0.0);
}

TEST(GroupCtrTest, CountsPerGroup) {
  auto stats = GroupCtr({1, 0, 1, 1}, {0, 0, 1, 1});
  EXPECT_EQ(stats[0].impressions, 2);
  EXPECT_EQ(stats[0].clicks, 1);
  EXPECT_DOUBLE_EQ(stats[1].ctr(), 1.0);
}

TEST(CalibrationTest, PerfectlyCalibratedScoresLowEce) {
  Rng rng(4);
  std::vector<float> probs, labels;
  for (int i = 0; i < 50000; ++i) {
    float p = static_cast<float>(rng.Uniform());
    probs.push_back(p);
    labels.push_back(rng.Bernoulli(p) ? 1.0f : 0.0f);
  }
  EXPECT_LT(ExpectedCalibrationError(probs, labels), 0.01);
}

TEST(CalibrationTest, MiscalibratedScoresHighEce) {
  Rng rng(5);
  std::vector<float> probs, labels;
  for (int i = 0; i < 20000; ++i) {
    probs.push_back(0.9f);  // predicts 90%...
    labels.push_back(rng.Bernoulli(0.1) ? 1.0f : 0.0f);  // ...reality is 10%
  }
  EXPECT_GT(ExpectedCalibrationError(probs, labels), 0.7);
}

TEST(CalibrationTest, TableBucketsCoverInputs) {
  std::vector<float> probs = {0.05f, 0.15f, 0.95f, 0.92f};
  std::vector<float> labels = {0, 0, 1, 1};
  auto table = CalibrationTable(probs, labels, 10);
  int64_t total = 0;
  for (const auto& b : table) total += b.count;
  EXPECT_EQ(total, 4);
  // Highest bucket observed CTR is 1.
  EXPECT_DOUBLE_EQ(table.back().observed_ctr, 1.0);
  EXPECT_NEAR(table.back().mean_predicted, 0.935, 1e-6);
}

TEST(CalibrationTest, EmptyInputIsZero) {
  EXPECT_DOUBLE_EQ(ExpectedCalibrationError({}, {}), 0.0);
}

TEST(AucTest, InvariantUnderMonotoneTransform) {
  // AUC is a ranking metric: any strictly increasing transform of the
  // scores must leave it unchanged.
  Rng rng(6);
  std::vector<float> scores, labels;
  for (int i = 0; i < 500; ++i) {
    scores.push_back(static_cast<float>(rng.Normal()));
    labels.push_back(rng.Bernoulli(0.4) ? 1.0f : 0.0f);
  }
  std::vector<float> transformed;
  for (float s : scores) {
    transformed.push_back(1.0f / (1.0f + std::exp(-3.0f * s)) + 5.0f);
  }
  EXPECT_NEAR(Auc(scores, labels), Auc(transformed, labels), 1e-12);
}

TEST(AucTest, ComplementSymmetry) {
  // Negating scores flips AUC to 1 - AUC.
  Rng rng(7);
  std::vector<float> scores, neg, labels;
  for (int i = 0; i < 300; ++i) {
    float s = static_cast<float>(rng.Normal());
    scores.push_back(s);
    neg.push_back(-s);
    labels.push_back(rng.Bernoulli(0.5) ? 1.0f : 0.0f);
  }
  EXPECT_NEAR(Auc(scores, labels) + Auc(neg, labels), 1.0, 1e-9);
}

TEST(EvaluateTest, FillsAllFields) {
  Rng rng(3);
  std::vector<float> probs, labels;
  std::vector<int32_t> tp, city, req;
  for (int i = 0; i < 500; ++i) {
    float p = static_cast<float>(rng.Uniform());
    probs.push_back(p);
    labels.push_back(rng.Bernoulli(p) ? 1.0f : 0.0f);  // informative scores
    tp.push_back(i % 5);
    city.push_back(i % 3);
    req.push_back(i / 10);
  }
  EvalSummary s = Evaluate(probs, labels, tp, city, req);
  EXPECT_GT(s.auc, 0.6);
  EXPECT_GT(s.tauc, 0.6);
  EXPECT_GT(s.cauc, 0.6);
  EXPECT_GT(s.ndcg3, 0.3);
  EXPECT_GE(s.ndcg10, s.ndcg3);
  EXPECT_GT(s.logloss, 0.0);
}

}  // namespace
}  // namespace basm::metrics
