#ifndef BASM_MODELS_AUTOINT_H_
#define BASM_MODELS_AUTOINT_H_

#include <memory>
#include <vector>

#include "models/ctr_model.h"
#include "models/feature_encoder.h"
#include "nn/attention.h"
#include "nn/linear.h"

namespace basm::models {

/// AutoInt (Song et al. 2019): each field is projected into a common token
/// space and stacked multi-head self-attention layers learn high-order field
/// interactions; the flattened tokens feed the output unit.
class AutoInt : public CtrModel {
 public:
  AutoInt(const data::Schema& schema, int64_t embed_dim, int64_t token_dim,
          int64_t num_layers, int64_t num_heads, Rng& rng);

  autograd::Variable ForwardLogits(const data::Batch& batch) override;
  autograd::Variable FinalRepresentation(const data::Batch& batch) override;
  std::string name() const override { return "AutoInt"; }

 private:
  autograd::Variable Tokens(const data::Batch& batch);

  int64_t token_dim_;
  std::unique_ptr<FeatureEncoder> encoder_;
  std::vector<std::unique_ptr<nn::Linear>> field_proj_;  // one per field
  std::vector<std::unique_ptr<nn::MultiHeadSelfAttention>> layers_;
  std::unique_ptr<nn::Linear> out_;
};

}  // namespace basm::models

#endif  // BASM_MODELS_AUTOINT_H_
