// Fixture: an fsync syscall issued while holding a basm::Mutex.
#include "common/mutex.h"

namespace fixture {

class Journal {
 public:
  void Sync() {
    basm::MutexLock lock(&mu_);
    fsync(fd_);
  }

 private:
  basm::Mutex mu_;
  int fd_ = -1;
};

}  // namespace fixture
