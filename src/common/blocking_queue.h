#ifndef BASM_COMMON_BLOCKING_QUEUE_H_
#define BASM_COMMON_BLOCKING_QUEUE_H_

#include <algorithm>
#include <chrono>
#include <deque>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/synchronization.h"

namespace basm {

/// Bounded multi-producer/multi-consumer queue with backpressure and
/// shutdown-drain semantics, the request buffer of the serving engine:
///
///  - TryPush rejects (returns false) when the queue is at capacity or has
///    been shut down, so overload turns into fast failures instead of
///    unbounded memory growth — the reject-on-full policy of a production
///    ranking frontend.
///  - Pop blocks until an item is available; after Shutdown() the remaining
///    items drain in FIFO order and further pops return nullopt, which lets
///    workers finish in-flight requests before exiting.
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(size_t capacity) : capacity_(capacity) {
    BASM_CHECK_GT(capacity_, 0u);
  }

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Non-blocking push; false when full or shut down. Takes an rvalue
  /// reference so a rejected item is NOT consumed — the caller keeps it and
  /// can fail the request it represents.
  bool TryPush(T&& item) BASM_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      if (shutdown_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.Signal();
    return true;
  }

  /// Blocking push; waits while full, returns false once shut down (the
  /// item is then left with the caller).
  bool Push(T&& item) BASM_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && items_.size() >= capacity_) not_full_.Wait(mu_);
      if (shutdown_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.Signal();
    return true;
  }

  /// Blocks until an item is available; nullopt once shut down and drained.
  std::optional<T> Pop() BASM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (!shutdown_ && items_.empty()) not_empty_.Wait(mu_);
    return PopLocked();
  }

  /// Pop with a timeout; nullopt on timeout or shutdown-and-drained.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout)
      BASM_EXCLUDES(mu_) {
    auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(&mu_);
    while (!shutdown_ && items_.empty()) {
      if (!not_empty_.WaitUntil(mu_, deadline) && items_.empty()) break;
    }
    return PopLocked();
  }

  /// Non-blocking pop; nullopt when empty.
  std::optional<T> TryPop() BASM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return PopLocked();
  }

  /// Calls `fn(const T&)` on up to `max_items` items from the front (the
  /// ones a consumer will pop next), under the queue lock. Read-only: items
  /// stay queued. The serving engine uses this to prefetch features for the
  /// next micro-batch while the current one is still scoring.
  template <typename Fn>
  void PeekFront(size_t max_items, Fn&& fn) const BASM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    size_t n = std::min(max_items, items_.size());
    for (size_t i = 0; i < n; ++i) fn(static_cast<const T&>(items_[i]));
  }

  /// Stops accepting pushes and wakes every waiter. Queued items remain
  /// poppable until the queue is empty (drain semantics).
  void Shutdown() BASM_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      shutdown_ = true;
    }
    not_empty_.SignalAll();
    not_full_.SignalAll();
  }

  size_t size() const BASM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return items_.size();
  }

  bool shut_down() const BASM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return shutdown_;
  }

  size_t capacity() const { return capacity_; }

 private:
  /// Pops the head if present; notifies a producer.
  std::optional<T> PopLocked() BASM_REQUIRES(mu_) {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.Signal();
    return item;
  }

  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ BASM_GUARDED_BY(mu_);
  bool shutdown_ BASM_GUARDED_BY(mu_) = false;
};

}  // namespace basm

#endif  // BASM_COMMON_BLOCKING_QUEUE_H_
