#ifndef BASM_DATA_SCHEMA_H_
#define BASM_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace basm::data {

/// Time-periods used throughout the paper: scenario split for STAR, grouping
/// key for TAUC, and the filter key of StSTL.
enum class TimePeriod : int32_t {
  kBreakfast = 0,  // 05-09
  kLunch = 1,      // 10-13
  kAfternoonTea = 2,  // 14-16
  kDinner = 3,     // 17-20
  kNight = 4,      // 21-04
};

inline constexpr int32_t kNumTimePeriods = 5;

/// Maps an hour of day (0-23) to its meal period.
TimePeriod TimePeriodOfHour(int32_t hour);

/// Display name ("breakfast", ...).
const char* TimePeriodName(TimePeriod tp);

/// Vocabulary sizes and sequence geometry of one dataset. Models size their
/// embedding tables from this; the generator fills it in.
struct Schema {
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t num_cities = 0;
  int64_t num_geohash = 0;   // geohash cell vocabulary
  int64_t num_categories = 0;
  int64_t num_brands = 0;
  int64_t num_price_buckets = 10;
  int64_t num_positions = 10;
  int64_t num_genders = 3;
  int64_t num_age_buckets = 8;
  int64_t num_spend_buckets = 5;
  int64_t num_hours = 24;
  int64_t num_time_periods = kNumTimePeriods;
  int64_t num_weekdays = 7;
  /// Hand-selected cross features (paper's "Combine Feature" field).
  int64_t num_cross_spend_price = 0;   // spend_bucket x price_bucket
  int64_t num_cross_age_category = 0;  // age_bucket x category
  /// Max behavior-sequence length (shorter histories are mask-padded).
  int64_t seq_len = 0;
  /// Dense (statistics) feature widths per field.
  int64_t user_dense_dim = 3;
  int64_t item_dense_dim = 3;

  /// Total distinct categorical feature values (paper's "#Feature" in
  /// Table III counts feature columns; we report both in the bench).
  int64_t TotalVocab() const {
    return num_users + num_items + num_cities + num_geohash + num_categories +
           num_brands + num_price_buckets + num_positions + num_genders +
           num_age_buckets + num_spend_buckets + num_hours +
           num_time_periods + num_weekdays + num_cross_spend_price +
           num_cross_age_category;
  }

  /// Number of feature columns across all fields (Table I inventory).
  int64_t NumFeatureColumns() const {
    // user: id, gender, age, spend + 3 dense; item: id, cat, brand, price,
    // position + 3 dense; context: hour, tp, city, geohash, weekday;
    // combine: 2 crosses; sequence: 6 per event.
    return 4 + 3 + 5 + 3 + 5 + 2 + 6;
  }
};

/// One event in a user's behavior history.
struct BehaviorEvent {
  int32_t item_id = 0;
  int32_t category = 0;
  int32_t brand = 0;
  int32_t hour = 0;
  int32_t time_period = 0;
  int32_t city = 0;
  int32_t geohash = 0;
};

/// One impression (candidate item shown to a user in a spatiotemporal
/// context). This is the row format of both synthetic datasets.
struct Example {
  // -- user field --
  int32_t user_id = 0;
  int32_t gender = 0;
  int32_t age_bucket = 0;
  int32_t spend_bucket = 0;
  float user_ctr = 0.0f;     // smoothed historical CTR
  float user_orders = 0.0f;  // normalized 90-day order count
  float user_clicks = 0.0f;  // normalized 1-day click count
  // -- candidate item field --
  int32_t item_id = 0;
  int32_t category = 0;
  int32_t brand = 0;
  int32_t price_bucket = 0;
  int32_t position = 0;  // rank slot within the request
  float item_ctr = 0.0f;
  float item_pop = 0.0f;    // normalized popularity
  float shop_score = 0.0f;  // rating-like score
  // -- spatiotemporal context field --
  int32_t hour = 0;
  int32_t time_period = 0;
  int32_t city = 0;
  int32_t geohash = 0;
  int32_t weekday = 0;
  // -- combine field --
  int32_t cross_spend_price = 0;
  int32_t cross_age_category = 0;
  // -- behavior sequence (most recent first) --
  std::vector<BehaviorEvent> behaviors;
  // -- label & bookkeeping --
  float label = 0.0f;
  int32_t day = 0;
  int32_t request_id = 0;  // impressions of one request share this
  float gt_prob = 0.0f;    // planted ground-truth click probability
};

/// A full dataset with its schema and a train/test split boundary
/// (`test_day`: examples with day >= test_day are the held-out day, matching
/// the paper's last-day-test protocol).
struct Dataset {
  Schema schema;
  std::vector<Example> examples;
  int32_t test_day = 0;
  std::string name;

  std::vector<const Example*> TrainExamples() const;
  std::vector<const Example*> TestExamples() const;
};

}  // namespace basm::data

#endif  // BASM_DATA_SCHEMA_H_
