#include "analysis/tsne.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"

namespace basm::analysis {

namespace {

/// Squared Euclidean distance matrix of [n,d] points.
std::vector<double> PairwiseSq(const Tensor& x) {
  int64_t n = x.dim(0), d = x.dim(1);
  std::vector<double> dist(n * n, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      for (int64_t k = 0; k < d; ++k) {
        double diff = x[i * d + k] - x[j * d + k];
        acc += diff * diff;
      }
      dist[i * n + j] = acc;
      dist[j * n + i] = acc;
    }
  }
  return dist;
}

}  // namespace

Tsne::Tsne(TsneConfig config) : config_(config) {}

Tensor Tsne::Embed(const Tensor& points) const {
  BASM_CHECK_EQ(points.rank(), 2);
  int64_t n = points.dim(0);
  BASM_CHECK_GT(n, 4);
  std::vector<double> dist = PairwiseSq(points);

  // Per-point sigma by binary search on the entropy to hit the target
  // perplexity; builds conditional probabilities p_{j|i}.
  std::vector<double> p(n * n, 0.0);
  double target_entropy = std::log(config_.perplexity);
  for (int64_t i = 0; i < n; ++i) {
    double beta = 1.0, beta_lo = 0.0, beta_hi = 1e12;
    for (int iter = 0; iter < 60; ++iter) {
      double sum = 0.0, dot = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        if (j == i) continue;
        double pij = std::exp(-dist[i * n + j] * beta);
        p[i * n + j] = pij;
        sum += pij;
        dot += dist[i * n + j] * pij;
      }
      if (sum <= 1e-300) {
        beta /= 2.0;
        beta_hi = beta * 4.0;
        continue;
      }
      double entropy = std::log(sum) + beta * dot / sum;
      if (std::abs(entropy - target_entropy) < 1e-4) break;
      if (entropy > target_entropy) {
        beta_lo = beta;
        beta = (beta_hi >= 1e12) ? beta * 2.0 : (beta + beta_hi) / 2.0;
      } else {
        beta_hi = beta;
        beta = (beta + beta_lo) / 2.0;
      }
    }
    double sum = 0.0;
    for (int64_t j = 0; j < n; ++j) sum += p[i * n + j];
    if (sum > 0) {
      for (int64_t j = 0; j < n; ++j) p[i * n + j] /= sum;
    }
  }
  // Symmetrize.
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double v = (p[i * n + j] + p[j * n + i]) / (2.0 * n);
      v = std::max(v, 1e-12);
      p[i * n + j] = v;
      p[j * n + i] = v;
    }
    p[i * n + i] = 0.0;
  }

  // Gradient descent on 2-D coordinates with the reference implementation's
  // per-coordinate gains and momentum schedule (van der Maaten 2008) — plain
  // momentum oscillates and freezes once points overshoot.
  Rng rng(config_.seed);
  std::vector<double> y(n * 2), vel(n * 2, 0.0), gains(n * 2, 1.0);
  for (auto& v : y) v = rng.Normal(0.0, 1e-2);

  std::vector<double> q(n * n);
  int exaggerate_until = config_.iterations / 4;
  for (int iter = 0; iter < config_.iterations; ++iter) {
    double exo = iter < exaggerate_until ? config_.exaggeration : 1.0;
    double momentum = iter < exaggerate_until ? 0.5 : config_.momentum;
    // Student-t affinities.
    double qsum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      q[i * n + i] = 0.0;
      for (int64_t j = i + 1; j < n; ++j) {
        double dx = y[2 * i] - y[2 * j];
        double dy = y[2 * i + 1] - y[2 * j + 1];
        double v = 1.0 / (1.0 + dx * dx + dy * dy);
        q[i * n + j] = v;
        q[j * n + i] = v;
        qsum += 2.0 * v;
      }
    }
    qsum = std::max(qsum, 1e-300);
    // Gradient and update.
    for (int64_t i = 0; i < n; ++i) {
      double gx = 0.0, gy = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        if (j == i) continue;
        double qn = q[i * n + j] / qsum;
        double mult = (exo * p[i * n + j] - qn) * q[i * n + j];
        gx += 4.0 * mult * (y[2 * i] - y[2 * j]);
        gy += 4.0 * mult * (y[2 * i + 1] - y[2 * j + 1]);
      }
      // Clip the raw gradient: hub points with concentrated P mass can
      // otherwise blow the embedding apart in the first iterations, after
      // which all q's vanish and the layout freezes.
      double g[2] = {std::clamp(gx, -5.0, 5.0), std::clamp(gy, -5.0, 5.0)};
      for (int d = 0; d < 2; ++d) {
        int64_t idx = 2 * i + d;
        // Gain grows when gradient and velocity agree in moving direction,
        // shrinks when they fight (sign(grad) == sign(vel) means reversal
        // because the update subtracts the gradient).
        bool same_sign = (g[d] > 0.0) == (vel[idx] > 0.0);
        gains[idx] = same_sign ? gains[idx] * 0.8 : gains[idx] + 0.2;
        gains[idx] = std::max(gains[idx], 0.01);
        vel[idx] = momentum * vel[idx] -
                   config_.learning_rate * gains[idx] * g[d];
        y[idx] += vel[idx];
      }
    }
    // Re-center.
    double mx = 0.0, my = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      mx += y[2 * i];
      my += y[2 * i + 1];
    }
    mx /= n;
    my /= n;
    for (int64_t i = 0; i < n; ++i) {
      y[2 * i] -= mx;
      y[2 * i + 1] -= my;
    }
  }

  Tensor out({n, 2});
  for (int64_t i = 0; i < 2 * n; ++i) out[i] = static_cast<float>(y[i]);
  return out;
}

double SeparationRatio(const Tensor& points,
                       const std::vector<int32_t>& labels) {
  BASM_CHECK_EQ(points.rank(), 2);
  int64_t n = points.dim(0), d = points.dim(1);
  BASM_CHECK_EQ(n, static_cast<int64_t>(labels.size()));

  std::map<int32_t, std::vector<double>> centroids;
  std::map<int32_t, int64_t> counts;
  for (int64_t i = 0; i < n; ++i) {
    auto& c = centroids[labels[i]];
    if (c.empty()) c.assign(d, 0.0);
    for (int64_t k = 0; k < d; ++k) c[k] += points[i * d + k];
    counts[labels[i]]++;
  }
  for (auto& [label, c] : centroids) {
    for (double& v : c) v /= static_cast<double>(counts[label]);
  }

  // Within-class spread: mean distance to own centroid.
  double within = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const auto& c = centroids[labels[i]];
    double acc = 0.0;
    for (int64_t k = 0; k < d; ++k) {
      double diff = points[i * d + k] - c[k];
      acc += diff * diff;
    }
    within += std::sqrt(acc);
  }
  within /= static_cast<double>(n);

  // Between-class: mean pairwise centroid distance.
  double between = 0.0;
  int64_t pairs = 0;
  for (auto it = centroids.begin(); it != centroids.end(); ++it) {
    for (auto jt = std::next(it); jt != centroids.end(); ++jt) {
      double acc = 0.0;
      for (int64_t k = 0; k < d; ++k) {
        double diff = it->second[k] - jt->second[k];
        acc += diff * diff;
      }
      between += std::sqrt(acc);
      ++pairs;
    }
  }
  if (pairs == 0 || within <= 1e-12) return 0.0;
  between /= static_cast<double>(pairs);
  return between / within;
}

double Silhouette(const Tensor& points, const std::vector<int32_t>& labels) {
  BASM_CHECK_EQ(points.rank(), 2);
  int64_t n = points.dim(0);
  BASM_CHECK_EQ(n, static_cast<int64_t>(labels.size()));
  std::vector<double> dist = PairwiseSq(points);

  double total = 0.0;
  int64_t counted = 0;
  for (int64_t i = 0; i < n; ++i) {
    std::map<int32_t, std::pair<double, int64_t>> per_class;
    for (int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      auto& [sum, count] = per_class[labels[j]];
      sum += std::sqrt(dist[i * n + j]);
      ++count;
    }
    auto own = per_class.find(labels[i]);
    if (own == per_class.end() || own->second.second == 0) continue;
    double a = own->second.first / own->second.second;
    double b = 1e300;
    for (auto& [label, sc] : per_class) {
      if (label == labels[i] || sc.second == 0) continue;
      b = std::min(b, sc.first / sc.second);
    }
    if (b >= 1e300) continue;
    total += (b - a) / std::max(a, b);
    ++counted;
  }
  return counted == 0 ? 0.0 : total / counted;
}

}  // namespace basm::analysis
