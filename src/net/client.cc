#include "net/client.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"

namespace basm::net {

StatusOr<RpcClient> RpcClient::Connect(const std::string& host,
                                       uint16_t port) {
  StatusOr<TcpConnection> connection = TcpConnection::Connect(host, port);
  if (!connection.ok()) return connection.status();
  return RpcClient(std::move(connection).value());
}

StatusOr<uint64_t> RpcClient::Send(const RpcRequest& request) {
  RpcRequest outgoing = request;
  outgoing.sequence = next_sequence_++;
  std::vector<uint8_t> frame = EncodeRequestFrame(outgoing);
  BASM_RETURN_IF_ERROR(connection_.WriteAll(frame.data(), frame.size()));
  return outgoing.sequence;
}

StatusOr<RpcResponse> RpcClient::Receive(int timeout_ms) {
  if (timeout_ms >= 0) {
    StatusOr<bool> readable = connection_.WaitReadable(timeout_ms);
    if (!readable.ok()) return readable.status();
    if (!readable.value()) {
      return Status::DeadlineExceeded("no response within " +
                                      std::to_string(timeout_ms) + " ms");
    }
  }
  uint8_t header_bytes[kFrameHeaderBytes];
  BASM_RETURN_IF_ERROR(
      connection_.ReadAll(header_bytes, kFrameHeaderBytes));
  FrameHeader header;
  BASM_RETURN_IF_ERROR(
      DecodeFrameHeader(header_bytes, kFrameHeaderBytes, &header));
  if (header.type != FrameType::kResponse) {
    return Status::InvalidArgument("expected a response frame");
  }
  std::vector<uint8_t> payload(header.payload_size);
  BASM_RETURN_IF_ERROR(connection_.ReadAll(payload.data(), payload.size()));
  BASM_RETURN_IF_ERROR(VerifyPayload(header, payload.data(), payload.size()));
  RpcResponse response;
  BASM_RETURN_IF_ERROR(
      DecodeResponsePayload(payload.data(), payload.size(), &response));
  return response;
}

StatusOr<RpcResponse> RpcClient::Call(const RpcRequest& request) {
  StatusOr<uint64_t> sequence = Send(request);
  if (!sequence.ok()) return sequence.status();
  StatusOr<RpcResponse> received = Receive(-1);
  if (!received.ok()) return received;
  // Sequence 0 is the server's "decode failed before the sequence was
  // known" escape hatch; anything else must echo ours.
  if (received.value().sequence != 0 &&
      received.value().sequence != sequence.value()) {
    return Status::Internal("response sequence mismatch: sent " +
                            std::to_string(sequence.value()) + ", got " +
                            std::to_string(received.value().sequence));
  }
  return received;
}

ClientFleet::ClientFleet(const data::World& world, FleetConfig config)
    : world_(world),
      config_(config),
      user_zipf_(world.config().num_users, config.zipf_exponent) {
  BASM_CHECK_GT(config_.num_clients, 0);
  BASM_CHECK_GT(config_.num_requests, 0);
  MutexLock lock(&rehome_mu_);
  user_replica_.assign(world.config().num_users, -1);
}

RpcRequest ClientFleet::MakeRequest(Rng& rng, int64_t i) const {
  RpcRequest request;
  // Zipf-distributed users over the meal-time exposure curve: the traffic
  // shape of the paper's Fig 2, offered to the router as-is.
  request.request.user_id = static_cast<int32_t>(user_zipf_.Sample(rng));
  request.request.hour = world_.SampleHour(rng);
  request.request.weekday = static_cast<int32_t>(i % 7);
  request.request.city = world_.user(request.request.user_id).city;
  request.request.day = 0;
  request.request.request_id = static_cast<int32_t>(i);
  request.deadline_micros = config_.deadline_micros;
  if (config_.explicit_candidates > 0) {
    const std::vector<int32_t>& pool =
        world_.CityItems(request.request.city);
    std::unordered_set<int32_t> picked;
    int32_t want = std::min<int32_t>(config_.explicit_candidates,
                                     static_cast<int32_t>(pool.size()));
    while (static_cast<int32_t>(picked.size()) < want) {
      picked.insert(pool[rng.NextUint64(pool.size())]);
    }
    request.candidates.assign(picked.begin(), picked.end());
  }
  return request;
}

void ClientFleet::ClientLoop(const std::string& host, uint16_t port,
                             int32_t client_id, int64_t begin, int64_t end,
                             FleetReport* report,
                             runtime::LatencyRecorder* recorder) {
  StatusOr<RpcClient> client = RpcClient::Connect(host, port);
  if (!client.ok()) {
    report->transport_errors += end - begin;
    return;
  }
  Rng rng = Rng(config_.seed).Fork(static_cast<uint64_t>(client_id));
  const int32_t window = std::max<int32_t>(1, config_.pipeline_window);
  int32_t consecutive_transport_failures = 0;

  // In-flight bookkeeping for the pipelined window: sequence -> what we
  // need when its response lands (possibly out of order).
  struct InFlight {
    int32_t user_id = 0;
    double start_seconds = 0.0;
  };
  std::map<uint64_t, InFlight> outstanding;
  WallTimer timer;
  int64_t next = begin;

  // A broken stream loses every in-flight request (each counted as one
  // transport error, like the serial loop's lost call). Returns false when
  // the client abandons the remainder.
  auto recover_transport = [&]() -> bool {
    report->transport_errors += static_cast<int64_t>(outstanding.size());
    outstanding.clear();
    if (++consecutive_transport_failures >= config_.max_transport_failures) {
      report->transport_errors += end - next;  // abandoned remainder
      return false;
    }
    // The stream is broken (or the server closed on a malformed frame);
    // reconnect and carry on with the next request.
    client = RpcClient::Connect(host, port);
    if (!client.ok()) {
      report->transport_errors += end - next;
      return false;
    }
    return true;
  };

  while (next < end || !outstanding.empty()) {
    // Fill the window before waiting: with window 1 this is the classic
    // lock-step loop, with window N the frontend sees N frames back to
    // back and completes them in whatever order the replicas finish.
    bool send_failed = false;
    while (next < end &&
           static_cast<int32_t>(outstanding.size()) < window) {
      RpcRequest request = MakeRequest(rng, next);
      ++next;
      ++report->sent;
      StatusOr<uint64_t> sequence = client.value().Send(request);
      if (!sequence.ok()) {
        ++report->transport_errors;
        send_failed = true;
        break;
      }
      outstanding.emplace(
          sequence.value(),
          InFlight{request.request.user_id, timer.ElapsedSeconds()});
    }
    if (send_failed) {
      if (!recover_transport()) return;
      continue;
    }

    StatusOr<RpcResponse> received =
        client.value().Receive(config_.receive_timeout_ms);
    if (!received.ok()) {
      if (!recover_transport()) return;
      continue;
    }
    auto in_flight = outstanding.find(received.value().sequence);
    if (in_flight == outstanding.end()) {
      // Unmatched sequence — either the server's sequence-0 decode-failure
      // escape hatch or a desynchronized stream; both mean this connection
      // is done.
      if (!recover_transport()) return;
      continue;
    }
    consecutive_transport_failures = 0;
    const RpcResponse& response = received.value();
    switch (response.code) {
      case StatusCode::kOk: {
        ++report->ok;
        if (response.degraded) ++report->degraded;
        recorder->RecordLatency(static_cast<int64_t>(
            (timer.ElapsedSeconds() - in_flight->second.start_seconds) *
            1e6));
        int32_t replica = static_cast<int32_t>(response.replica);
        if (replica >= 0 &&
            static_cast<size_t>(replica) < 1024 /* sane replica count */) {
          if (static_cast<size_t>(replica) >=
              report->per_replica_ok.size()) {
            report->per_replica_ok.resize(replica + 1, 0);
          }
          ++report->per_replica_ok[replica];
          MutexLock lock(&rehome_mu_);
          int32_t& last = user_replica_[in_flight->second.user_id];
          if (last >= 0 && last != replica) ++report->rehomed_users;
          last = replica;
        }
        break;
      }
      case StatusCode::kUnavailable:
        ++report->shed;
        break;
      default:
        ++report->failed;
        break;
    }
    outstanding.erase(in_flight);
  }
  // Reached only when every assigned request was resolved (answered or
  // tallied), never via abandonment.
  ++report->clients_served;
}

StatusOr<FleetReport> ClientFleet::Run(const std::string& host,
                                       uint16_t port) {
  FleetReport report;
  runtime::LatencyRecorder recorder;
  WallTimer timer;

  const int64_t per_client = config_.num_requests / config_.num_clients;
  const int64_t remainder = config_.num_requests % config_.num_clients;

  std::vector<FleetReport> partials(config_.num_clients);
  std::vector<std::thread> clients;
  clients.reserve(config_.num_clients);
  int64_t next_begin = 0;
  for (int32_t c = 0; c < config_.num_clients; ++c) {
    int64_t begin = next_begin;
    int64_t end = begin + per_client + (c < remainder ? 1 : 0);
    next_begin = end;
    clients.emplace_back([this, host, port, c, begin, end, &partials,
                          &recorder] {
      ClientLoop(host, port, c, begin, end, &partials[c], &recorder);
    });
  }
  for (std::thread& t : clients) t.join();

  for (const FleetReport& partial : partials) {
    report.sent += partial.sent;
    report.ok += partial.ok;
    report.degraded += partial.degraded;
    report.shed += partial.shed;
    report.failed += partial.failed;
    report.transport_errors += partial.transport_errors;
    report.rehomed_users += partial.rehomed_users;
    report.clients_served += partial.clients_served;
    if (partial.per_replica_ok.size() > report.per_replica_ok.size()) {
      report.per_replica_ok.resize(partial.per_replica_ok.size(), 0);
    }
    for (size_t r = 0; r < partial.per_replica_ok.size(); ++r) {
      report.per_replica_ok[r] += partial.per_replica_ok[r];
    }
  }
  if (report.sent > 0 && report.ok == 0 && report.transport_errors > 0 &&
      report.shed == 0 && report.failed == 0) {
    return Status::Unavailable("fleet could not reach " + host + ":" +
                               std::to_string(port));
  }

  report.wall_seconds = timer.ElapsedSeconds();
  if (report.wall_seconds > 0.0) {
    report.qps = static_cast<double>(report.ok) / report.wall_seconds;
  }
  runtime::LatencySnapshot snap = recorder.Snapshot();
  report.p50_micros = snap.p50_micros;
  report.p99_micros = snap.p99_micros;
  return report;
}

std::string FleetReport::ToString() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "sent %lld  ok %lld  degraded %lld  shed %lld  failed %lld  "
                "transport errors %lld\n",
                static_cast<long long>(sent), static_cast<long long>(ok),
                static_cast<long long>(degraded),
                static_cast<long long>(shed), static_cast<long long>(failed),
                static_cast<long long>(transport_errors));
  out += line;
  std::snprintf(line, sizeof(line),
                "goodput %.1f qps  p50 %.0f us  p99 %.0f us  "
                "rehomed users %lld  clients served %lld\n",
                qps, p50_micros, p99_micros,
                static_cast<long long>(rehomed_users),
                static_cast<long long>(clients_served));
  out += line;
  if (!per_replica_ok.empty()) {
    out += "per-replica ok:";
    for (size_t r = 0; r < per_replica_ok.size(); ++r) {
      std::snprintf(line, sizeof(line), " r%zu=%lld", r,
                    static_cast<long long>(per_replica_ok[r]));
      out += line;
    }
    out += '\n';
  }
  return out;
}

}  // namespace basm::net
