#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/fault.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/batch.h"
#include "data/synth.h"
#include "feature_store/feature_store.h"
#include "gtest/gtest.h"
#include "core/model_zoo.h"
#include "feature_store/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

namespace basm {
namespace {

// --------------------------------------------------------- injector -----

TEST(FaultInjectorTest, UnconfiguredSiteIsClean) {
  FaultInjector injector(1);
  for (int i = 0; i < 100; ++i) {
    FaultDecision d = injector.Evaluate("nobody.configured.me");
    EXPECT_TRUE(d.status.ok());
    EXPECT_EQ(d.delay_micros, 0);
  }
  EXPECT_EQ(injector.SiteStats("nobody.configured.me").calls, 0);
}

TEST(FaultInjectorTest, DeterministicGivenSeedAndConfig) {
  auto run = [](uint64_t seed) {
    FaultInjector injector(seed);
    FaultSiteConfig config;
    config.error_probability = 0.3;
    config.spike_probability = 0.2;
    config.spike_micros = 123;
    injector.Configure("site", config);
    std::vector<std::pair<bool, int64_t>> decisions;
    for (int i = 0; i < 200; ++i) {
      FaultDecision d = injector.Evaluate("site");
      decisions.emplace_back(d.status.ok(), d.delay_micros);
    }
    return decisions;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(FaultInjectorTest, RatesApproximatelyHonored) {
  FaultInjector injector(7);
  FaultSiteConfig config;
  config.error_probability = 0.25;
  config.spike_probability = 0.10;
  injector.Configure("site", config);
  const int n = 20000;
  for (int i = 0; i < n; ++i) injector.Evaluate("site");
  FaultSiteStats stats = injector.SiteStats("site");
  EXPECT_EQ(stats.calls, n);
  EXPECT_NEAR(static_cast<double>(stats.errors) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(stats.spikes) / n, 0.10, 0.02);
}

TEST(FaultInjectorTest, OutageWindowIsExactByCallIndex) {
  FaultInjector injector(9);
  FaultSiteConfig config;
  config.outage_start_call = 10;
  config.outage_calls = 5;
  injector.Configure("site", config);
  int errors = 0;
  for (int i = 0; i < 30; ++i) {
    FaultDecision d = injector.Evaluate("site");
    bool in_window = i >= 10 && i < 15;
    EXPECT_EQ(!d.status.ok(), in_window) << "call " << i;
    if (!d.status.ok()) ++errors;
  }
  EXPECT_EQ(errors, 5);
  EXPECT_EQ(injector.SiteStats("site").outages, 5);
}

TEST(FaultInjectorTest, ReconfigureResetsTheSite) {
  FaultInjector injector(11);
  FaultSiteConfig kill;
  kill.error_probability = 1.0;
  injector.Configure("site", kill);
  EXPECT_FALSE(injector.Evaluate("site").status.ok());

  injector.Configure("site", FaultSiteConfig{});  // fault cleared
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(injector.Evaluate("site").status.ok());
  }
  EXPECT_EQ(injector.SiteStats("site").calls, 50);  // counter reset too
}

TEST(FaultInjectorTest, DefaultConfigReachesUnknownSites) {
  FaultInjector injector(13);
  FaultSiteConfig config;
  config.error_probability = 1.0;
  injector.SetDefaultConfig(config);
  EXPECT_FALSE(injector.Evaluate("never.named.before").status.ok());
  // An explicit Configure still overrides the default.
  injector.Configure("never.named.before", FaultSiteConfig{});
  EXPECT_TRUE(injector.Evaluate("never.named.before").status.ok());
}

// ------------------------------------------------------------ retry -----

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndClamps) {
  RetryPolicy policy;
  policy.initial_backoff_micros = 100;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_micros = 500;
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_EQ(policy.BackoffMicros(1, rng), 100);
  EXPECT_EQ(policy.BackoffMicros(2, rng), 200);
  EXPECT_EQ(policy.BackoffMicros(3, rng), 400);
  EXPECT_EQ(policy.BackoffMicros(4, rng), 500);  // clamped
  EXPECT_EQ(policy.BackoffMicros(10, rng), 500);
}

TEST(RetryPolicyTest, JitterStaysWithinBandAndIsDeterministic) {
  RetryPolicy policy;
  policy.initial_backoff_micros = 1000;
  policy.jitter = 0.2;
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) {
    int64_t wait_a = policy.BackoffMicros(1, a);
    EXPECT_GE(wait_a, 800);
    EXPECT_LE(wait_a, 1200);
    EXPECT_EQ(wait_a, policy.BackoffMicros(1, b));  // same stream, same wait
  }
}

// ---------------------------------------------------------- breaker -----

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresAndShortCircuits) {
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  config.open_micros = 60 * 1000 * 1000;  // never half-opens in this test
  CircuitBreaker breaker(config);

  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_FALSE(breaker.RecordFailure());
  // A success resets the consecutive count: two more failures don't trip.
  breaker.RecordSuccess();
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_TRUE(breaker.RecordFailure());  // third consecutive: trips
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());

  CircuitBreaker::Stats stats = breaker.stats();
  EXPECT_EQ(stats.opens, 1);
  EXPECT_EQ(stats.short_circuits, 2);
}

TEST(CircuitBreakerTest, HalfOpenProbesCloseAfterSuccesses) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.open_micros = 2000;  // 2ms open window
  config.half_open_probes = 1;
  config.close_after_successes = 2;
  CircuitBreaker breaker(config);

  EXPECT_TRUE(breaker.RecordFailure());
  EXPECT_FALSE(breaker.Allow());  // still open
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  EXPECT_TRUE(breaker.Allow());  // open window elapsed: probe admitted
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow());  // probe budget spent until it reports
  breaker.RecordSuccess();
  EXPECT_TRUE(breaker.Allow());  // second probe
  breaker.RecordSuccess();       // two successes: closed
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

  CircuitBreaker::Stats stats = breaker.stats();
  EXPECT_EQ(stats.opens, 1);
  EXPECT_EQ(stats.half_opens, 1);
  EXPECT_EQ(stats.closes, 1);
}

TEST(CircuitBreakerTest, FailedProbeReopens) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.open_micros = 1000;
  CircuitBreaker breaker(config);

  EXPECT_TRUE(breaker.RecordFailure());
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  EXPECT_TRUE(breaker.Allow());                      // half-open probe
  EXPECT_TRUE(breaker.RecordFailure());              // probe failed
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.stats().opens, 2);
}

// --------------------------------------- status through feature path ----

feature_store::FeatureServer MakeFeatureServer(const data::World& world) {
  return feature_store::FeatureServer(world, world.config().seq_len, 3);
}

data::SynthConfig TinyWorldConfig() {
  data::SynthConfig c = data::SynthConfig::Eleme();
  c.num_users = 40;
  c.num_items = 40;
  c.num_cities = 2;
  c.seq_len = 4;
  return c;
}

TEST(FeatureServerFaultTest, InjectedStatusRoundTripsCodeAndMessage) {
  data::World world(TinyWorldConfig());
  feature_store::FeatureServer features = MakeFeatureServer(world);

  FaultInjector injector(21);
  FaultSiteConfig config;
  config.error_probability = 1.0;
  config.error_code = StatusCode::kDeadlineExceeded;
  config.error_message = "abfs lookup timed out";
  injector.Configure(feature_store::kFeatureFetchFaultSite, config);
  features.SetFaultInjector(&injector);

  // This suite tests the raw RPC surface itself, below the store facade.
  auto fetched = features.FetchUserFeatures(0);  // basm-lint: allow(feature-fetch-outside-store)
  ASSERT_FALSE(fetched.ok());
  // The injected Status's code and message must survive the fallible path
  // verbatim — what callers branch and log on.
  EXPECT_EQ(fetched.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(fetched.status().message(), "abfs lookup timed out");
  EXPECT_EQ(fetched.status().ToString(),
            "DEADLINE_EXCEEDED: abfs lookup timed out");

  features.SetFaultInjector(nullptr);
  auto clean = features.FetchUserFeatures(0);  // basm-lint: allow(feature-fetch-outside-store)
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.value().user_id, 0);
  EXPECT_EQ(clean.value().behaviors.size(),
            features.GetUserFeatures(0).behaviors.size());
}

TEST(FeatureServerFaultTest, BadUserIdIsRecoverableNotFatal) {
  data::World world(TinyWorldConfig());
  feature_store::FeatureServer features = MakeFeatureServer(world);
  features.SetFaultInjector(nullptr);
  auto fetched = features.FetchUserFeatures(-1);  // basm-lint: allow(feature-fetch-outside-store)
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(fetched.status().message().find("-1"), std::string::npos);
}

TEST(FeatureServerFaultTest, InjectedSpikeDelaysTheFetch) {
  data::World world(TinyWorldConfig());
  feature_store::FeatureServer features = MakeFeatureServer(world);

  FaultInjector injector(23);
  FaultSiteConfig config;
  config.spike_probability = 1.0;
  config.spike_micros = 20000;  // 20ms
  injector.Configure(feature_store::kFeatureFetchFaultSite, config);
  features.SetFaultInjector(&injector);

  auto start = std::chrono::steady_clock::now();
  auto fetched = features.FetchUserFeatures(1);  // basm-lint: allow(feature-fetch-outside-store)
  auto waited = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(fetched.ok());  // slow but successful
  EXPECT_GE(waited, std::chrono::milliseconds(15));
}

// ------------------------------------------- pipeline degradation -------

class PipelineFaultTest : public ::testing::Test {
 protected:
  PipelineFaultTest()
      : world_(TinyWorldConfig()),
        features_(world_, world_.config().seq_len, 3),
        store_(&features_),
        recall_(world_),
        injector_(31),
        model_(core::CreateModel(core::ModelKind::kDin, world_.schema(),
                                   13)),
        pipeline_(world_, &store_, &recall_, model_.get(),
                  /*recall_size=*/8, /*expose_k=*/4) {
    model_->SetTraining(false);
    features_.SetFaultInjector(&injector_);
    request_.user_id = 1;
    request_.hour = 12;
    request_.city = world_.user(1).city;
    request_.request_id = 9;
    Rng rng(5);
    candidates_ = recall_.RecallByCity(request_.city, 8, rng);
  }

  std::chrono::steady_clock::time_point DeadlineIn(int64_t micros) {
    return std::chrono::steady_clock::now() +
           std::chrono::microseconds(micros);
  }

  data::World world_;
  feature_store::FeatureServer features_;
  feature_store::FeatureStore store_;
  serving::RecallIndex recall_;
  FaultInjector injector_;
  std::unique_ptr<models::CtrModel> model_;
  serving::Pipeline pipeline_;
  serving::Request request_;
  std::vector<int32_t> candidates_;
};

TEST_F(PipelineFaultTest, HappyPathIsBitIdenticalToInfalliblePath) {
  serving::FeatureFaultPolicy policy;
  pipeline_.EnableFaultTolerance(policy);

  serving::FeatureFetchOutcome outcome;
  std::vector<data::Example> fallible = pipeline_.BuildExamplesFallible(
      request_, candidates_, DeadlineIn(1000000), &outcome);
  EXPECT_FALSE(outcome.degraded);
  EXPECT_EQ(outcome.retries, 0);

  std::vector<data::Example> plain =
      pipeline_.BuildExamples(request_, candidates_);
  ASSERT_EQ(fallible.size(), plain.size());
  // Same scores => same examples where it matters.
  auto score = [&](const std::vector<data::Example>& examples) {
    std::vector<const data::Example*> ptrs;
    for (const auto& e : examples) ptrs.push_back(&e);
    return model_->PredictProbs(data::MakeBatch(ptrs, world_.schema()));
  };
  std::vector<float> a = score(fallible), b = score(plain);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_F(PipelineFaultTest, FetchFailureDegradesInsteadOfFailing) {
  FaultSiteConfig kill;
  kill.error_probability = 1.0;
  injector_.Configure(feature_store::kFeatureFetchFaultSite, kill);

  serving::FeatureFaultPolicy policy;
  policy.retry.max_attempts = 3;
  policy.retry.initial_backoff_micros = 50;
  pipeline_.EnableFaultTolerance(policy);

  serving::FeatureFetchOutcome outcome;
  std::vector<data::Example> examples = pipeline_.BuildExamplesFallible(
      request_, candidates_, DeadlineIn(1000000), &outcome);
  EXPECT_TRUE(outcome.degraded);
  EXPECT_EQ(outcome.retries, 2);  // three attempts, two retries
  EXPECT_FALSE(outcome.last_error.ok());
  // The degraded request still produces a scoreable slate.
  ASSERT_EQ(examples.size(), candidates_.size());
  std::vector<const data::Example*> ptrs;
  for (const auto& e : examples) ptrs.push_back(&e);
  std::vector<float> scores =
      model_->PredictProbs(data::MakeBatch(ptrs, world_.schema()));
  auto slate =
      serving::Pipeline::MakeSlate(candidates_, scores, /*expose_k=*/4);
  EXPECT_EQ(slate.size(), 4u);
}

TEST_F(PipelineFaultTest, DeadlineBudgetStopsRetrying) {
  FaultSiteConfig kill;
  kill.error_probability = 1.0;
  injector_.Configure(feature_store::kFeatureFetchFaultSite, kill);

  serving::FeatureFaultPolicy policy;
  policy.retry.max_attempts = 10;
  policy.retry.initial_backoff_micros = 50000;  // 50ms per backoff
  policy.retry.jitter = 0.0;
  pipeline_.EnableFaultTolerance(policy);

  serving::FeatureFetchOutcome outcome;
  auto start = std::chrono::steady_clock::now();
  // 5ms budget < one backoff: the loop must give up after the first try.
  pipeline_.BuildExamplesFallible(request_, candidates_, DeadlineIn(5000),
                                  &outcome);
  auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(outcome.degraded);
  EXPECT_EQ(outcome.retries, 0);
  EXPECT_LT(waited, std::chrono::milliseconds(40));
}

TEST_F(PipelineFaultTest, OpenBreakerShortCircuitsTheFetch) {
  FaultSiteConfig kill;
  kill.error_probability = 1.0;
  injector_.Configure(feature_store::kFeatureFetchFaultSite, kill);

  CircuitBreakerConfig breaker_config;
  breaker_config.failure_threshold = 2;
  breaker_config.open_micros = 60 * 1000 * 1000;
  CircuitBreaker breaker(breaker_config);

  serving::FeatureFaultPolicy policy;
  policy.retry.max_attempts = 5;
  policy.retry.initial_backoff_micros = 10;
  policy.breaker = &breaker;
  pipeline_.EnableFaultTolerance(policy);

  // First request: fails, trips the breaker mid-retry-loop.
  serving::FeatureFetchOutcome outcome;
  pipeline_.BuildExamplesFallible(request_, candidates_, DeadlineIn(1000000),
                                  &outcome);
  EXPECT_TRUE(outcome.degraded);
  EXPECT_TRUE(outcome.breaker_opened);
  int64_t calls_after_first =
      injector_.SiteStats(feature_store::kFeatureFetchFaultSite).calls;
  EXPECT_EQ(calls_after_first, 2);  // stopped at the trip, not max_attempts

  // Second request: short-circuited, zero fetch attempts.
  pipeline_.BuildExamplesFallible(request_, candidates_, DeadlineIn(1000000),
                                  &outcome);
  EXPECT_TRUE(outcome.degraded);
  EXPECT_TRUE(outcome.short_circuited);
  EXPECT_EQ(injector_.SiteStats(feature_store::kFeatureFetchFaultSite).calls,
            calls_after_first);
}

// ------------------------------------------------------ recall faults ----

TEST_F(PipelineFaultTest, RecallFaultFallsBackToCityHeadDegraded) {
  pipeline_.SetFaultInjector(&injector_);
  FaultSiteConfig kill;
  kill.error_probability = 1.0;
  injector_.Configure(serving::kRecallFaultSite, kill);

  Rng rng(17);
  bool degraded = false;
  std::vector<int32_t> fallback =
      pipeline_.RecallFallible(request_, rng, &degraded);
  EXPECT_TRUE(degraded);
  ASSERT_FALSE(fallback.empty());
  // The fallback is the head of the city's item list: unpersonalized but a
  // slate that renders, and it never consulted the failed recall index.
  const std::vector<int32_t>& pool = world_.CityItems(request_.city);
  ASSERT_LE(fallback.size(), pool.size());
  for (size_t i = 0; i < fallback.size(); ++i) {
    EXPECT_EQ(fallback[i], pool[i]);
  }
  EXPECT_EQ(injector_.SiteStats(serving::kRecallFaultSite).errors, 1);
}

TEST_F(PipelineFaultTest, RecallHappyPathIsBitIdenticalToPlainRecall) {
  pipeline_.SetFaultInjector(&injector_);  // site unconfigured: clean

  Rng plain_rng(23), fallible_rng(23);
  bool degraded = false;
  std::vector<int32_t> fallible =
      pipeline_.RecallFallible(request_, fallible_rng, &degraded);
  EXPECT_FALSE(degraded);
  EXPECT_EQ(fallible, pipeline_.Recall(request_, plain_rng));
}

}  // namespace
}  // namespace basm
