// Quickstart: generate a synthetic spatiotemporal food-ordering dataset,
// train BASM on it, and print the paper's offline metrics (AUC / TAUC /
// CAUC / NDCG / LogLoss) on the held-out day.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "common/env.h"
#include "core/basm_model.h"
#include "data/synth.h"
#include "train/trainer.h"

int main() {
  using namespace basm;

  // 1. A small spatiotemporal world (Ele.me-like profile, shrunk).
  data::SynthConfig config = data::SynthConfig::Eleme();
  config.num_users = 1500;
  config.num_items = 800;
  config.requests_per_day = basm::FastMode() ? 80 : 400;
  config.days = 6;
  config.test_day = 5;
  data::Dataset dataset = data::GenerateDataset(config);
  std::printf("dataset: %zu impressions, %lld train days, 1 test day\n",
              dataset.examples.size(),
              static_cast<long long>(config.test_day));

  // 2. Build BASM (StAEL + StSTL + StABT).
  Rng rng(7);
  core::BasmConfig model_config;
  core::Basm model(dataset.schema, model_config, rng);
  std::printf("model: %s with %lld parameters\n", model.name().c_str(),
              static_cast<long long>(model.ParameterCount()));

  // 3. Train with the paper's recipe (AdagradDecay + LR warmup).
  train::TrainConfig tc;
  tc.epochs = basm::FastMode() ? 1 : 2;
  train::TrainResult tr = train::Fit(model, dataset, tc);
  std::printf("trained %lld steps in %.1fs, final loss %.4f\n",
              static_cast<long long>(tr.steps), tr.seconds, tr.final_loss);

  // 4. Evaluate on the held-out day.
  train::EvalResult eval = train::EvaluateOnTest(model, dataset);
  std::printf("test AUC    %.4f\n", eval.summary.auc);
  std::printf("test TAUC   %.4f   (time-period-wise AUC, Eq. 20)\n",
              eval.summary.tauc);
  std::printf("test CAUC   %.4f   (city-wise AUC, Eq. 21)\n",
              eval.summary.cauc);
  std::printf("test NDCG@3 %.4f   NDCG@10 %.4f\n", eval.summary.ndcg3,
              eval.summary.ndcg10);
  std::printf("test LogLoss %.4f\n", eval.summary.logloss);
  return 0;
}
