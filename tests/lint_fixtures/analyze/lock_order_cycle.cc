// Fixture: two functions of one class nest the same pair of mutexes in
// opposite orders. Expect two undocumented-edge findings plus one cycle
// finding with a witness path.
#include "common/mutex.h"

namespace fixture {

class Pair {
 public:
  void Forward() {
    basm::MutexLock a(&first_mu_);
    basm::MutexLock b(&second_mu_);
  }
  void Backward() {
    basm::MutexLock b(&second_mu_);
    basm::MutexLock a(&first_mu_);
  }

 private:
  basm::Mutex first_mu_;
  basm::Mutex second_mu_;
};

}  // namespace fixture
