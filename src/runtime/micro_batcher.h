#ifndef BASM_RUNTIME_MICRO_BATCHER_H_
#define BASM_RUNTIME_MICRO_BATCHER_H_

#include <chrono>
#include <vector>

#include "common/blocking_queue.h"
#include "common/logging.h"
#include "common/synchronization.h"

namespace basm::runtime {

/// Coalescing counters of one MicroBatcher (across all worker threads).
struct MicroBatcherStats {
  int64_t batches = 0;  ///< non-empty batches closed
  int64_t items = 0;    ///< items coalesced into them
};

/// When a worker closes a micro-batch: at `max_batch_size` items, or
/// `max_wait_micros` after the first item arrived, whichever comes first —
/// the classic throughput/latency knob of an online scoring service. A
/// max_batch_size of 1 (or max_wait_micros of 0 with an idle queue)
/// degenerates to one-request-at-a-time serving.
///
/// Adaptive widening (the ROADMAP's queue-pressure policy): when
/// `pressure_depth > 0`, the wait deadline scales with the queue backlog
/// observed at batch-open time — from `max_wait_micros` on an idle queue
/// linearly up to `pressured_wait_micros` once the backlog reaches
/// `pressure_depth`. Under pressure a longer collection window amortizes
/// one model forward over more requests (throughput recovers exactly when
/// it is needed), while an idle queue keeps the tight latency bound.
struct BatchPolicy {
  int64_t max_batch_size = 4;
  int64_t max_wait_micros = 200;
  /// Backlog depth at which the widened wait fully applies; 0 disables
  /// adaptive widening.
  int64_t pressure_depth = 0;
  /// Wait applied at/above `pressure_depth`; must be >= max_wait_micros.
  int64_t pressured_wait_micros = 0;

  /// Collection wait for a batch opened with `queue_depth` items backed up.
  int64_t EffectiveWaitMicros(size_t queue_depth) const {
    if (pressure_depth <= 0) return max_wait_micros;
    if (static_cast<int64_t>(queue_depth) >= pressure_depth) {
      return pressured_wait_micros;
    }
    // Linear ramp between the idle and fully-pressured waits.
    return max_wait_micros + (pressured_wait_micros - max_wait_micros) *
                                 static_cast<int64_t>(queue_depth) /
                                 pressure_depth;
  }
};

/// Coalesces items from a shared BlockingQueue into micro-batches. Several
/// workers may call NextBatch() on one MicroBatcher concurrently; batching
/// keeps no state between calls (only counters), so batches never
/// interleave a single item twice and shutdown drains cleanly.
template <typename T>
class MicroBatcher {
 public:
  /// The queue is borrowed and must outlive the batcher.
  MicroBatcher(BlockingQueue<T>* queue, BatchPolicy policy)
      : queue_(queue), policy_(policy) {
    BASM_CHECK(queue_ != nullptr);
    BASM_CHECK_GT(policy_.max_batch_size, 0);
    BASM_CHECK_GE(policy_.max_wait_micros, 0);
    if (policy_.pressure_depth > 0) {
      BASM_CHECK_GE(policy_.pressured_wait_micros, policy_.max_wait_micros)
          << "adaptive widening must not shrink the batching window";
    }
  }

  /// Blocks for the first item, then coalesces follow-ups under the policy.
  /// An empty result means the queue has shut down and drained; partial
  /// batches (deadline hit, or shutdown mid-collection) are returned as-is.
  std::vector<T> NextBatch() {
    std::vector<T> batch;
    auto first = queue_->Pop();
    if (!first.has_value()) return batch;
    batch.reserve(policy_.max_batch_size);
    batch.push_back(std::move(*first));

    // Backlog observed as the batch opens decides the collection window
    // (adaptive widening under queue pressure; see BatchPolicy).
    auto close_at = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(
                        policy_.EffectiveWaitMicros(queue_->size()));
    while (static_cast<int64_t>(batch.size()) < policy_.max_batch_size) {
      auto remaining = close_at - std::chrono::steady_clock::now();
      if (remaining <= std::chrono::steady_clock::duration::zero()) {
        // Deadline passed: still sweep whatever is already queued so a
        // zero-wait policy batches ready work instead of thrashing.
        auto item = queue_->TryPop();
        if (!item.has_value()) break;
        batch.push_back(std::move(*item));
        continue;
      }
      auto item = queue_->PopFor(remaining);
      if (!item.has_value()) break;  // timed out, or shutdown and drained
      batch.push_back(std::move(*item));
    }
    if (!batch.empty()) {
      MutexLock lock(&mu_);
      ++stats_.batches;
      stats_.items += static_cast<int64_t>(batch.size());
    }
    return batch;
  }

  /// Batches closed / items coalesced so far (all workers combined).
  MicroBatcherStats stats() const BASM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }

  const BatchPolicy& policy() const { return policy_; }

 private:
  BlockingQueue<T>* queue_;
  BatchPolicy policy_;
  mutable Mutex mu_;
  MicroBatcherStats stats_ BASM_GUARDED_BY(mu_);
};

}  // namespace basm::runtime

#endif  // BASM_RUNTIME_MICRO_BATCHER_H_
