#ifndef BASM_NET_CLIENT_H_
#define BASM_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "data/synth.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/latency_recorder.h"

namespace basm::net {

/// Blocking RPC client over one TCP connection: one in-flight call at a
/// time, sequence numbers assigned and verified per call. Move-only (owns
/// the connection).
class RpcClient {
 public:
  [[nodiscard]] static StatusOr<RpcClient> Connect(const std::string& host,
                                                   uint16_t port);

  /// Disconnected client (StatusOr default-constructibility); every use
  /// goes through Connect().
  RpcClient() = default;

  RpcClient(RpcClient&&) = default;
  RpcClient& operator=(RpcClient&&) = default;

  /// Sends the request and blocks for the matching response. The returned
  /// Status covers transport and framing only — an application-level error
  /// (shed, unroutable, deadline) comes back as an OK Call whose
  /// RpcResponse::code is not kOk, exactly as it crossed the wire.
  [[nodiscard]] StatusOr<RpcResponse> Call(const RpcRequest& request);

 private:
  explicit RpcClient(TcpConnection connection)
      : connection_(std::move(connection)) {}

  TcpConnection connection_;
  uint64_t next_sequence_ = 1;
};

/// The closed-loop client fleet driving the networked tier: `num_clients`
/// connections, each submitting its next request the moment the previous
/// one completes. Traffic follows the paper's serving context — users drawn
/// Zipf-distributed (a head of heavy orderers, a long tail), request hours
/// drawn from the World's meal-time diurnal exposure curve, the context
/// city the user's home city — so the loopback benchmark exercises the
/// same skew the router's consistent hashing has to absorb.
struct FleetConfig {
  int32_t num_clients = 8;
  /// Total requests across the fleet.
  int64_t num_requests = 2000;
  /// Zipf exponent of the user draw (0 = uniform users).
  double zipf_exponent = 1.1;
  int64_t deadline_micros = 1000000;
  /// Per-request explicit candidate count; 0 lets the replica run recall.
  int32_t explicit_candidates = 0;
  /// Consecutive transport failures after which a client gives up (the
  /// server is gone, not a replica).
  int32_t max_transport_failures = 3;
  uint64_t seed = 0xF1EE7ULL;
};

/// Aggregate outcome of one fleet run.
struct FleetReport {
  int64_t sent = 0;
  int64_t ok = 0;
  /// Subset of `ok` served with a degraded behavior window.
  int64_t degraded = 0;
  /// UNAVAILABLE responses: admission-shed, queue-full, or unroutable.
  int64_t shed = 0;
  /// Other non-OK responses (deadline exceeded, cancelled, ...).
  int64_t failed = 0;
  /// Broken connections / framing errors seen by clients.
  int64_t transport_errors = 0;
  /// Users whose answering replica changed mid-run — zero under stable
  /// replicas (the consistent-hash pin), positive only across a failover.
  int64_t rehomed_users = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_micros = 0.0;
  double p99_micros = 0.0;
  /// OK responses answered by each replica id (kNoReplica excluded).
  std::vector<int64_t> per_replica_ok;

  std::string ToString() const;
};

class ClientFleet {
 public:
  ClientFleet(const data::World& world, FleetConfig config);

  ClientFleet(const ClientFleet&) = delete;
  ClientFleet& operator=(const ClientFleet&) = delete;

  /// Runs the whole fleet against host:port and blocks until every client
  /// finishes. May be called repeatedly (phases of one scenario: baseline,
  /// kill, recovery); counters accumulate per call, not across calls.
  [[nodiscard]] StatusOr<FleetReport> Run(const std::string& host,
                                          uint16_t port);

 private:
  /// One client's closed loop (requests [begin, end) of the run).
  void ClientLoop(const std::string& host, uint16_t port, int32_t client_id,
                  int64_t begin, int64_t end, FleetReport* report,
                  runtime::LatencyRecorder* recorder);

  const data::World& world_;
  const FleetConfig config_;
  const ZipfTable user_zipf_;
  /// Last replica observed answering each user, across Run() calls; -1
  /// until first observed. Guarded by rehome_mu_ (cold path: one update
  /// per response).
  Mutex rehome_mu_;
  std::vector<int32_t> user_replica_ BASM_GUARDED_BY(rehome_mu_);
};

}  // namespace basm::net

#endif  // BASM_NET_CLIENT_H_
