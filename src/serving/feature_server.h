#ifndef BASM_SERVING_FEATURE_SERVER_H_
#define BASM_SERVING_FEATURE_SERVER_H_

#include <deque>
#include <vector>

#include "common/rng.h"
#include "data/synth.h"

namespace basm::serving {

/// Analogue of the Alibaba Basic Feature Server (ABFS, Fig 13): when a user
/// opens the app, returns their profile features and recent behavior
/// sequence. Maintains per-user rolling histories that grow as the online
/// loop records new clicks, so the serving stack is closed-loop like the
/// production system.
class FeatureServer {
 public:
  /// Histories are bootstrapped from the world's generative process.
  FeatureServer(const data::World& world, int64_t history_len, uint64_t seed);

  struct UserFeatures {
    int32_t user_id = 0;
    /// Most-recent-first behavior window of at most history_len events.
    std::vector<data::BehaviorEvent> behaviors;
  };

  UserFeatures GetUserFeatures(int32_t user_id) const;

  /// Appends a clicked item to the user's history (most recent first).
  void RecordClick(int32_t user_id, const data::BehaviorEvent& event);

  int64_t history_len() const { return history_len_; }

 private:
  const data::World& world_;
  int64_t history_len_;
  std::vector<std::deque<data::BehaviorEvent>> histories_;
};

}  // namespace basm::serving

#endif  // BASM_SERVING_FEATURE_SERVER_H_
