file(REMOVE_RECURSE
  "../bench/table7_online_ab"
  "../bench/table7_online_ab.pdb"
  "CMakeFiles/table7_online_ab.dir/table7_online_ab.cc.o"
  "CMakeFiles/table7_online_ab.dir/table7_online_ab.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_online_ab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
