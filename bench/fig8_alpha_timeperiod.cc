// Reproduces Fig 8: (a) user activity (clicks/orders) per time-period and
// (b) the heatmap of learned StAEL spatiotemporal weights alpha_j per
// feature field over time-periods.
//
// Expected shape (paper): at lunch/dinner (active periods) the gates give
// higher weight to user-side fields (user, behavior sequence, combine); at
// breakfast/night the item and context fields gain weight instead.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/ascii_chart.h"
#include "bench/bench_util.h"
#include "metrics/metrics.h"

int main() {
  using namespace basm;
  std::printf("[fig8] StAEL alpha by time-period\n");
  bench::TrainedBasm tb = bench::TrainBasmOnEleme(
      static_cast<uint64_t>(basm::EnvInt("BASM_SEED", 42)));

  // (a) user activity per time-period on the test day.
  std::vector<float> labels;
  std::vector<int32_t> tps;
  for (const auto* e : tb.dataset.TestExamples()) {
    labels.push_back(e->label);
    tps.push_back(e->time_period);
  }
  auto activity = metrics::GroupCtr(labels, tps);
  std::vector<std::string> tp_names;
  std::vector<double> clicks, exposures;
  for (int32_t tp = 0; tp < data::kNumTimePeriods; ++tp) {
    tp_names.push_back(
        data::TimePeriodName(static_cast<data::TimePeriod>(tp)));
    exposures.push_back(static_cast<double>(activity[tp].impressions));
    clicks.push_back(static_cast<double>(activity[tp].clicks));
  }
  std::printf("\n(a) exposures by time-period:\n%s",
              analysis::BarChart(tp_names, exposures, 40).c_str());
  std::printf("\n(a) clicks by time-period:\n%s",
              analysis::BarChart(tp_names, clicks, 40).c_str());

  // (b) mean learned alpha_j per (time-period, field).
  auto alpha = bench::CollectAlphaByGroup(
      *tb.model, tb.dataset,
      [](const data::Example& e) { return e.time_period; });
  std::vector<std::vector<double>> grid;
  for (int32_t tp = 0; tp < data::kNumTimePeriods; ++tp) {
    grid.push_back(alpha.count(tp) > 0 ? alpha[tp]
                                       : std::vector<double>(5, 0.0));
  }
  std::printf("\n(b) mean StAEL alpha per field x time-period:\n%s",
              analysis::Heatmap(tp_names, core::Basm::FieldNames(), grid)
                  .c_str());

  // Quantified takeaway: user-side minus item-side weight at active vs
  // inactive periods.
  auto user_side = [&](int32_t tp) {
    return (grid[tp][0] + grid[tp][1] + grid[tp][4]) / 3.0;  // user/seq/comb
  };
  auto item_side = [&](int32_t tp) {
    return (grid[tp][2] + grid[tp][3]) / 2.0;  // item/context
  };
  double active = (user_side(1) - item_side(1) + user_side(3) - item_side(3)) / 2.0;
  double inactive =
      (user_side(0) - item_side(0) + user_side(4) - item_side(4)) / 2.0;
  std::printf(
      "\nuser-side minus item-side alpha: active periods %.4f vs "
      "breakfast/night %.4f (expect active > inactive)\n",
      active, inactive);
  return 0;
}
