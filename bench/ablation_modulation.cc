// Falsification bench (DESIGN.md §5): BASM's edge over a static model must
// come from the spatiotemporal modulation planted in the data. Sweeping the
// generator's modulation amplitude (0 = every context identical, 1 = default,
// 1.5 = stronger drift) should show the BASM-vs-DIN AUC gap growing with the
// amplitude and vanishing at zero.

#include <cstdio>

#include "common/env.h"
#include "common/table_printer.h"
#include "data/synth.h"
#include "core/model_zoo.h"
#include "train/trainer.h"

int main() {
  using namespace basm;
  uint64_t seed = static_cast<uint64_t>(basm::EnvInt("BASM_SEED", 42));
  std::printf("[ablation] data modulation sweep (BASM vs DIN)\n\n");

  TablePrinter table(
      {"Modulation", "DIN AUC", "BASM AUC", "Gap", "DIN TAUC", "BASM TAUC"});
  for (float scale : {0.0f, 1.0f, 1.5f}) {
    data::SynthConfig config = data::SynthConfig::Eleme();
    if (basm::FastMode()) config = config.Fast();
    config.tp_modulation *= scale;
    config.city_modulation *= scale;
    data::Dataset ds = data::GenerateDataset(config);

    train::TrainConfig tc;
    tc.epochs = basm::FastMode() ? 1 : 2;
    auto din = core::CreateModel(core::ModelKind::kDin, ds.schema, seed);
    train::Fit(*din, ds, tc);
    train::EvalResult din_eval = train::EvaluateOnTest(*din, ds);

    auto basm_model =
        core::CreateModel(core::ModelKind::kBasm, ds.schema, seed);
    train::Fit(*basm_model, ds, tc);
    train::EvalResult basm_eval = train::EvaluateOnTest(*basm_model, ds);

    table.AddRow({TablePrinter::Num(scale, 1),
                  TablePrinter::Num(din_eval.summary.auc),
                  TablePrinter::Num(basm_eval.summary.auc),
                  TablePrinter::Num(basm_eval.summary.auc -
                                    din_eval.summary.auc),
                  TablePrinter::Num(din_eval.summary.tauc),
                  TablePrinter::Num(basm_eval.summary.tauc)});
    std::printf("  finished modulation x%.1f\n", scale);
  }
  table.Print();
  std::printf("\n(expect the BASM-DIN gap to grow with modulation)\n");
  return 0;
}
