#ifndef BASM_NN_LAYERNORM_H_
#define BASM_NN_LAYERNORM_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace basm::nn {

/// Layer normalization over the feature dimension of [B, H] activations:
/// per-row mean/variance normalization with a learned affine transform.
/// Unlike BatchNorm it needs no running statistics and behaves identically
/// at train and serve time — the usual choice when serving batches are tiny
/// (single-request scoring in the RTP path).
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t features, float eps = 1e-5f);

  autograd::Variable Forward(const autograd::Variable& x) const;

  int64_t features() const { return features_; }

 private:
  int64_t features_;
  float eps_;
  autograd::Variable gamma_;  // [1, H]
  autograd::Variable beta_;   // [1, H]
};

}  // namespace basm::nn

#endif  // BASM_NN_LAYERNORM_H_
