#include "optim/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace basm::optim {

Optimizer::Optimizer(std::vector<autograd::Variable> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  for (const auto& p : params_) {
    BASM_CHECK(p.defined());
    BASM_CHECK(p.requires_grad());
  }
}

void Optimizer::Step() {
  if (clip_norm_ > 0.0f) {
    double sq = 0.0;
    for (auto& p : params_) {
      const Tensor& g = p.grad();
      for (int64_t i = 0; i < g.numel(); ++i) {
        sq += static_cast<double>(g[i]) * g[i];
      }
    }
    double norm = std::sqrt(sq);
    if (norm > clip_norm_) {
      float scale = static_cast<float>(clip_norm_ / norm);
      for (auto& p : params_) p.grad().ScaleInPlace(scale);
    }
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    Update(i, params_[i].mutable_value(), params_[i].grad());
  }
  ZeroGrad();
  ++step_count_;
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<autograd::Variable> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) velocity_.emplace_back(p.value().shape());
  }
}

void Sgd::Update(size_t i, Tensor& value, const Tensor& grad) {
  if (momentum_ > 0.0f) {
    Tensor& v = velocity_[i];
    v.ScaleInPlace(momentum_);
    v.AddInPlace(grad);
    value.AddScaledInPlace(v, -lr_);
  } else {
    value.AddScaledInPlace(grad, -lr_);
  }
}

Adagrad::Adagrad(std::vector<autograd::Variable> params, float lr, float decay,
                 float eps)
    : Optimizer(std::move(params), lr), decay_(decay), eps_(eps) {
  BASM_CHECK_GT(decay_, 0.0f);
  BASM_CHECK_LE(decay_, 1.0f);
  accum_.reserve(params_.size());
  for (const auto& p : params_) accum_.emplace_back(p.value().shape());
}

void Adagrad::Update(size_t i, Tensor& value, const Tensor& grad) {
  Tensor& acc = accum_[i];
  for (int64_t j = 0; j < value.numel(); ++j) {
    acc[j] = decay_ * acc[j] + grad[j] * grad[j];
    value[j] -= lr_ * grad[j] / (std::sqrt(acc[j]) + eps_);
  }
}

Adam::Adam(std::vector<autograd::Variable> params, float lr, float beta1,
           float beta2, float eps)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value().shape());
    v_.emplace_back(p.value().shape());
    t_.push_back(0);
  }
}

void Adam::Update(size_t i, Tensor& value, const Tensor& grad) {
  Tensor& m = m_[i];
  Tensor& v = v_[i];
  int64_t t = ++t_[i];
  float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t));
  float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t));
  for (int64_t j = 0; j < value.numel(); ++j) {
    m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad[j];
    v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad[j] * grad[j];
    float mhat = m[j] / bc1;
    float vhat = v[j] / bc2;
    value[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
}

LinearWarmup::LinearWarmup(float base, float peak, int64_t warmup_steps)
    : base_(base), peak_(peak), warmup_steps_(warmup_steps) {
  BASM_CHECK_GT(warmup_steps_, 0);
}

float LinearWarmup::LearningRate(int64_t step) const {
  if (step >= warmup_steps_) return peak_;
  float frac = static_cast<float>(step) / static_cast<float>(warmup_steps_);
  return base_ + (peak_ - base_) * frac;
}

}  // namespace basm::optim
