// Fixture: nondeterminism violation on line 6 (rand) and line 7
// (random_device). Never compiled.
#include <cstdlib>

int Fixture() {
  int noise = rand();
  std::random_device rd;
  return noise + static_cast<int>(rd());
}
