#ifndef BASM_SERVING_PARALLEL_SCORE_H_
#define BASM_SERVING_PARALLEL_SCORE_H_

#include <vector>

#include "common/thread_pool.h"
#include "data/batch.h"
#include "models/ctr_model.h"

namespace basm::serving {

/// Scores `examples` with the model, optionally splitting the batch into
/// contiguous shards scored concurrently on `pool` (plus the calling
/// thread). Returns one probability per example, in example order.
///
/// Bit-identical to a single-batch PredictProbs call: eval-mode forwards are
/// row-independent (per-row features, running-stat BatchNorm, per-row
/// attention), so slicing the batch changes neither any row's arithmetic
/// nor its result — a property the runtime tests assert exactly.
///
/// Sharding happens only when `pool` is non-null and the batch has at least
/// `2 * min_rows_per_shard` rows; below that (or if the pool is shutting
/// down) scoring stays on the calling thread. Shard tasks open their own
/// autograd::NoGradGuard and ArenaScope, so pool threads score graph-free
/// and allocation-recycled regardless of caller state. The model must be in
/// eval mode (concurrent eval forwards are pure reads).
std::vector<float> ScoreExamples(models::CtrModel* model,
                                 const data::Schema& schema,
                                 const std::vector<data::Example>& examples,
                                 ThreadPool* pool,
                                 int64_t min_rows_per_shard);

}  // namespace basm::serving

#endif  // BASM_SERVING_PARALLEL_SCORE_H_
