#include "core/stael.h"

#include "tensor/tensor_ops.h"

namespace basm::core {

namespace ag = ::basm::autograd;

StAEL::StAEL(std::vector<int64_t> field_dims, int64_t ctx_dim, Rng& rng,
             float gate_scale)
    : gate_scale_(gate_scale) {
  BASM_CHECK(!field_dims.empty());
  BASM_CHECK_GT(gate_scale_, 0.0f);
  for (size_t j = 0; j < field_dims.size(); ++j) {
    gates_.push_back(
        std::make_unique<nn::Linear>(field_dims[j] + ctx_dim, 1, rng));
    RegisterModule("gate" + std::to_string(j), gates_.back().get());
  }
}

std::vector<ag::Variable> StAEL::Forward(
    const std::vector<ag::Variable>& fields, const ag::Variable& ctx) {
  BASM_CHECK_EQ(fields.size(), gates_.size());
  int64_t batch = ctx.value().rows();
  // The alpha cache is introspection state shared across callers; skip it in
  // inference mode so concurrent serving workers never write shared members.
  const bool record = ag::GradEnabled();
  if (record) last_alphas_ = Tensor({batch, num_fields()});

  std::vector<ag::Variable> out;
  out.reserve(fields.size());
  for (size_t j = 0; j < fields.size(); ++j) {
    ag::Variable gate_in = ag::ConcatCols({fields[j], ctx});
    ag::Variable alpha = ag::Scale(
        ag::Sigmoid(gates_[j]->Forward(gate_in)), gate_scale_);  // [B,1]
    if (record) {
      for (int64_t i = 0; i < batch; ++i) {
        last_alphas_.at(i, static_cast<int64_t>(j)) = alpha.value()[i];
      }
    }
    out.push_back(ag::MulColBroadcast(fields[j], alpha));
  }
  return out;
}

}  // namespace basm::core
