// Fixture: blocking calls inside event-loop scope — a poll-and-continue
// socket wrapper in a readiness handler and a sleep in a task — plus a
// lifecycle Stop() whose join must NOT be flagged (owner-thread territory).
#include "net/event_loop.h"

namespace fixture {

class EventLoop {
 public:
  void HandleReadable() {
    conn_.ReadAll(buf_, sizeof(buf_));
  }

  void RunTask() {
    usleep(1000);
  }

  void Stop() {
    thread_.join();
  }

 private:
  Conn conn_;
  Thread thread_;
  char buf_[16];
};

}  // namespace fixture
