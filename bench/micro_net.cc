// Networked serving tier bench: the loopback sweeps behind src/net/. A
// closed-loop client fleet (Zipf users, meal-time diurnal hours — the
// paper's serving context) drives the binary-RPC frontends over
// ServingEngine replicas behind the consistent-hash router, and reports
// qps, tail latency, shed and degraded counts into the "net" section of
// BENCH_serving.json. Three sweeps plus one demo:
//
//   1. replica sweep (1/2/4) on the thread-per-connection frontend — the
//      original cells, kept key-compatible for old bench_diff baselines;
//   2. connection-scaling sweep (64/256/1024 concurrent connections,
//      thread-per-conn at a fixed 64-thread budget vs epoll on 4 IO loops)
//      — the cells behind the "epoll sustains 4x the connections at
//      equal-or-better p99" acceptance bar;
//   3. pipelining-depth sweep (window 1/8/32 on the epoll frontend) — the
//      out-of-order completion payoff at a fixed connection count;
//   4. an overload demo (undersized queues, proactive admission control)
//      showing the tier shedding instead of collapsing.
//
// Intentionally a plain main() (not google-benchmark): each cell is one
// long closed-loop run whose whole latency distribution is the result,
// which benchmark's stat framework would only obscure.

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/env.h"
#include "data/synth.h"
#include "core/model_zoo.h"
#include "net/client.h"
#include "net/epoll_server.h"
#include "net/router.h"
#include "net/server.h"
#include "runtime/serving_engine.h"
#include "feature_store/feature_store.h"
#include "feature_store/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

namespace {

using namespace basm;

void AppendJsonNumber(std::ostringstream& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  out << buf;
}

enum class Frontend { kThreadPerConn, kEpoll };

struct CellResult {
  int32_t replicas = 0;
  net::FleetReport fleet;
  net::ServerStats server;
};

/// One sweep cell: boot `num_replicas` engines + router + the requested
/// frontend on an ephemeral loopback port, run the fleet, tear down.
CellResult RunCell(serving::Pipeline* pipeline, int32_t num_replicas,
                   const runtime::EngineConfig& engine_config,
                   Frontend frontend, const net::ServerConfig& server_config,
                   const net::EpollServerConfig& epoll_config,
                   const net::FleetConfig& fleet_config,
                   const data::World& world) {
  CellResult result;
  result.replicas = num_replicas;

  std::vector<std::unique_ptr<runtime::ServingEngine>> replicas;
  runtime::EngineConfig config = engine_config;
  for (int32_t i = 0; i < num_replicas; ++i) {
    config.seed = 0xBE7C + static_cast<uint64_t>(i);
    replicas.push_back(
        std::make_unique<runtime::ServingEngine>(pipeline, config));
  }
  std::vector<runtime::ServingEngine*> borrowed;
  for (const auto& r : replicas) borrowed.push_back(r.get());

  net::Router router(num_replicas, net::RouterConfig{});
  std::unique_ptr<net::RpcServer> tpc;
  std::unique_ptr<net::EpollRpcServer> epoll;
  uint16_t port = 0;
  if (frontend == Frontend::kThreadPerConn) {
    tpc = std::make_unique<net::RpcServer>(borrowed, &router, server_config);
    Status started = tpc->Start();
    if (!started.ok()) {
      std::printf("server start failed: %s\n", started.ToString().c_str());
      return result;
    }
    port = tpc->port();
  } else {
    epoll = std::make_unique<net::EpollRpcServer>(borrowed, &router,
                                                  epoll_config);
    Status started = epoll->Start();
    if (!started.ok()) {
      std::printf("server start failed: %s\n", started.ToString().c_str());
      return result;
    }
    port = epoll->port();
  }

  net::ClientFleet fleet(world, fleet_config);
  StatusOr<net::FleetReport> report = fleet.Run("127.0.0.1", port);
  if (report.ok()) result.fleet = report.value();
  if (tpc != nullptr) {
    result.server = tpc->stats();
    tpc->Stop();
  } else {
    result.server = epoll->stats().core;
    epoll->Stop();
  }
  for (auto& r : replicas) r->Shutdown();
  return result;
}

/// Appends the shared metric tail of one "net" JSON cell.
void AppendCellMetrics(std::ostringstream& out, const CellResult& cell) {
  out << ",\"qps\":";
  AppendJsonNumber(out, cell.fleet.qps);
  out << ",\"p50_micros\":";
  AppendJsonNumber(out, cell.fleet.p50_micros);
  out << ",\"p99_micros\":";
  AppendJsonNumber(out, cell.fleet.p99_micros);
  out << ",\"ok\":" << cell.fleet.ok << ",\"shed\":" << cell.fleet.shed
      << ",\"degraded\":" << cell.fleet.degraded
      << ",\"rehomed_users\":" << cell.fleet.rehomed_users
      << ",\"clients_served\":" << cell.fleet.clients_served << "}";
}

}  // namespace

int main() {
  data::SynthConfig config = data::SynthConfig::Eleme();
  config.num_users = 2000;
  config.num_items = 1500;
  config.num_cities = 8;
  data::World world(config);

  feature_store::FeatureServer features(world, world.config().seq_len, 3);
  feature_store::FeatureStore store(&features);
  serving::RecallIndex recall(world);
  auto model =
      core::CreateModel(core::ModelKind::kBasm, world.schema(), 42);
  model->SetTraining(false);
  serving::Pipeline pipeline(world, &store, &recall, model.get(),
                             /*recall_size=*/24, /*expose_k=*/8);

  const bool fast = basm::FastMode();
  net::FleetConfig fleet;
  fleet.num_requests =
      basm::EnvInt("BASM_NET_REQUESTS", fast ? 300 : 3000);
  fleet.num_clients = static_cast<int32_t>(basm::EnvInt("BASM_NET_CLIENTS", 16));

  runtime::EngineConfig engine_config;
  engine_config.num_workers = 2;
  engine_config.max_batch_requests = 4;
  engine_config.max_wait_micros = 200;

  std::printf("networked tier sweep: %lld requests/run, %d clients, "
              "model %s, hardware threads %u\n\n",
              static_cast<long long>(fleet.num_requests), fleet.num_clients,
              model->name().c_str(), std::thread::hardware_concurrency());

  std::ostringstream net_json;
  net_json << "[";
  bool first = true;

  // --- 1. replica sweep (thread-per-connection; baseline-compatible) ------
  for (int32_t num_replicas : {1, 2, 4}) {
    CellResult cell = RunCell(&pipeline, num_replicas, engine_config,
                              Frontend::kThreadPerConn, net::ServerConfig{},
                              net::EpollServerConfig{}, fleet, world);
    std::printf("replicas=%d\n%s%s\n", num_replicas,
                cell.fleet.ToString().c_str(),
                cell.server.ToString().c_str());
    if (!first) net_json << ",";
    first = false;
    net_json << "\n    {\"replicas\":" << num_replicas << ",\"qps\":";
    AppendJsonNumber(net_json, cell.fleet.qps);
    net_json << ",\"p50_micros\":";
    AppendJsonNumber(net_json, cell.fleet.p50_micros);
    net_json << ",\"p99_micros\":";
    AppendJsonNumber(net_json, cell.fleet.p99_micros);
    net_json << ",\"ok\":" << cell.fleet.ok
             << ",\"shed\":" << cell.fleet.shed
             << ",\"degraded\":" << cell.fleet.degraded
             << ",\"rehomed_users\":" << cell.fleet.rehomed_users << "}";
  }

  // --- 2. connection-scaling sweep: tpc (fixed thread budget) vs epoll ----
  // The thread-per-connection frontend keeps its thread budget fixed while
  // the offered connection count grows past it: surplus connections starve
  // in the handler queue until their clients time out and abandon. The
  // epoll frontend serves the same offered load from 4 loop threads.
  // `clients_served` (connections driven to completion) and p99 are the
  // acceptance metrics.
  const int32_t tpc_thread_budget = fast ? 16 : 64;
  const std::vector<int32_t> connection_sweep =
      fast ? std::vector<int32_t>{16, 64}
           : std::vector<int32_t>{64, 256, 1024};
  for (int32_t connections : connection_sweep) {
    for (Frontend frontend : {Frontend::kThreadPerConn, Frontend::kEpoll}) {
      const bool is_epoll = frontend == Frontend::kEpoll;
      net::FleetConfig scaling = fleet;
      scaling.num_clients = connections;
      scaling.num_requests = static_cast<int64_t>(connections) * 16;
      // A starved connection gives up quickly instead of padding the run:
      // abandoned clients are exactly what the cell is measuring.
      scaling.receive_timeout_ms = 1000;
      scaling.max_transport_failures = 2;
      net::ServerConfig tpc_config;
      tpc_config.io_threads = tpc_thread_budget;
      net::EpollServerConfig epoll_config;
      epoll_config.num_loops = fast ? 2 : 4;
      CellResult cell =
          RunCell(&pipeline, /*num_replicas=*/2, engine_config, frontend,
                  tpc_config, epoll_config, scaling, world);
      std::printf("connections=%d frontend=%s\n%s%s\n", connections,
                  is_epoll ? "epoll" : "tpc",
                  cell.fleet.ToString().c_str(),
                  cell.server.ToString().c_str());
      net_json << ",\n    {\"frontend\":\"" << (is_epoll ? "epoll" : "tpc")
               << "\",\"connections\":" << connections;
      AppendCellMetrics(net_json, cell);
    }
  }

  // --- 3. pipelining-depth sweep on the epoll frontend --------------------
  // Few connections, growing per-connection windows: depth N keeps N frames
  // in flight per connection and demuxes out-of-order completions by
  // sequence number. With only 8 connections, window 1 cannot fill the
  // engine's batches — depth recovers the concurrency a small fleet lacks,
  // which is the point of pipelining (and the acceptance bar: window 8 must
  // out-qps window 1). At 32 the engine, not the wire, is the limit.
  const int32_t pipeline_connections = fast ? 4 : 8;
  for (int32_t window : {1, 8, 32}) {
    net::FleetConfig pipelined = fleet;
    pipelined.num_clients = pipeline_connections;
    pipelined.num_requests = static_cast<int64_t>(pipeline_connections) *
                             (fast ? 50 : 200);
    pipelined.pipeline_window = window;
    net::EpollServerConfig epoll_config;
    epoll_config.num_loops = fast ? 2 : 4;
    CellResult cell =
        RunCell(&pipeline, /*num_replicas=*/2, engine_config,
                Frontend::kEpoll, net::ServerConfig{}, epoll_config,
                pipelined, world);
    std::printf("pipelining window=%d (%d connections, epoll)\n%s%s\n",
                window, pipeline_connections, cell.fleet.ToString().c_str(),
                cell.server.ToString().c_str());
    net_json << ",\n    {\"frontend\":\"epoll\",\"connections\":"
             << pipeline_connections << ",\"window\":" << window;
    AppendCellMetrics(net_json, cell);
  }
  net_json << "\n  ]";

  const std::string json_path =
      basm::EnvString("BASM_BENCH_JSON", "BENCH_serving.json");
  if (basm::bench::UpdateBenchJsonSection(json_path, "net", net_json.str())) {
    std::printf("wrote \"net\" section of %s\n\n", json_path.c_str());
  } else {
    std::printf("FAILED to write %s\n\n", json_path.c_str());
  }

  // Overload demo: queues sized far below the offered closed-loop demand,
  // plus proactive admission control — the tier sheds with UNAVAILABLE
  // instead of letting the backlog (and thus p99) grow without bound.
  {
    runtime::EngineConfig tiny = engine_config;
    tiny.num_workers = 1;
    tiny.queue_capacity = 4;
    net::ServerConfig frontend;
    frontend.shed_queue_fraction = 0.75;
    net::FleetConfig burst = fleet;
    burst.num_requests = std::min<int64_t>(fleet.num_requests, 800);
    burst.num_clients = 32;  // >> queue capacity: overload by construction
    CellResult cell = RunCell(&pipeline, /*num_replicas=*/2, tiny,
                              Frontend::kThreadPerConn, frontend,
                              net::EpollServerConfig{}, burst, world);
    std::printf("overload demo (2 replicas, queue 4, 32 clients)\n%s%s\n",
                cell.fleet.ToString().c_str(),
                cell.server.ToString().c_str());
  }
  return 0;
}
