#ifndef BASM_NN_INIT_H_
#define BASM_NN_INIT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace basm::nn {

/// Xavier/Glorot uniform init for a [fan_in, fan_out] weight matrix.
Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng& rng);

/// He/Kaiming normal init (for ReLU-family activations).
Tensor HeNormal(int64_t fan_in, int64_t fan_out, Rng& rng);

/// Small-scale normal used for embedding tables.
Tensor EmbeddingInit(int64_t vocab, int64_t dim, Rng& rng,
                     float stddev = 0.05f);

}  // namespace basm::nn

#endif  // BASM_NN_INIT_H_
