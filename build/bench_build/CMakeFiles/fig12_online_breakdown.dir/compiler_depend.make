# Empty compiler generated dependencies file for fig12_online_breakdown.
# This may be replaced when dependencies are built.
