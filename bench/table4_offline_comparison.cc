// Reproduces Table IV: offline comparison of Wide&Deep, DIN, AutoInt, STAR,
// M2M, APG and BASM on both synthetic datasets (Ele.me-like and public-like)
// across AUC / TAUC / CAUC / NDCG3 / NDCG10 / LogLoss.
//
// Expected shape (paper): dynamic-parameter models beat static ones and BASM
// is best on every metric on both datasets. Absolute values differ from the
// paper (simulated data, laptop scale).
//
// BASM_FAST=1 shrinks the workload ~10x; BASM_SEED overrides the data seed.

#include <cstdio>

#include "common/env.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "data/synth.h"
#include "core/model_zoo.h"
#include "train/trainer.h"

namespace {

using namespace basm;

void RunDataset(const data::SynthConfig& config, uint64_t model_seed) {
  data::Dataset dataset = data::GenerateDataset(config);
  std::printf("\n=== Dataset: %s (%zu impressions, test day %d) ===\n",
              dataset.name.c_str(), dataset.examples.size(), dataset.test_day);

  TablePrinter table({"Model", "AUC", "TAUC", "CAUC", "NDCG3", "NDCG10",
                      "LogLoss", "TrainSec"});
  for (core::ModelKind kind : core::TableFourModels()) {
    auto model = core::CreateModel(kind, dataset.schema, model_seed);
    train::TrainConfig tc;
    tc.epochs = basm::FastMode() ? 1 : 2;
    WallTimer timer;
    train::Fit(*model, dataset, tc);
    train::EvalResult eval = train::EvaluateOnTest(*model, dataset);
    table.AddRow({model->name(), TablePrinter::Num(eval.summary.auc),
                  TablePrinter::Num(eval.summary.tauc),
                  TablePrinter::Num(eval.summary.cauc),
                  TablePrinter::Num(eval.summary.ndcg3),
                  TablePrinter::Num(eval.summary.ndcg10),
                  TablePrinter::Num(eval.summary.logloss),
                  TablePrinter::Num(timer.ElapsedSeconds(), 1)});
    std::printf("  finished %s\n", model->name().c_str());
  }
  table.Print();
}

}  // namespace

int main() {
  uint64_t seed = static_cast<uint64_t>(basm::EnvInt("BASM_SEED", 42));
  std::printf("[table4] offline comparison (BASM_FAST=%d, seed=%llu)\n",
              basm::FastMode() ? 1 : 0,
              static_cast<unsigned long long>(seed));

  data::SynthConfig eleme = data::SynthConfig::Eleme();
  data::SynthConfig pub = data::SynthConfig::Public();
  if (basm::FastMode()) {
    eleme = eleme.Fast();
    pub = pub.Fast();
  }
  RunDataset(eleme, seed);
  RunDataset(pub, seed);
  return 0;
}
