// Reproduces Fig 11: t-SNE of final-layer instance representations, Base
// model (DIN variant) vs BASM, colored by city.
//
// Expected shape (paper): BASM's instance clusters per city are more
// convergent, while the Base model's are mixed.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/model_zoo.h"

int main() {
  using namespace basm;
  std::printf("[fig11] t-SNE of final representations by city\n");
  uint64_t seed = static_cast<uint64_t>(basm::EnvInt("BASM_SEED", 42));
  bench::TrainedBasm tb = bench::TrainBasmOnEleme(seed);

  std::printf("  training Base (DIN variant)...\n");
  auto base = core::CreateModel(core::ModelKind::kBaseDin,
                                  tb.dataset.schema, seed);
  train::TrainConfig tc;
  tc.epochs = basm::FastMode() ? 1 : 2;
  train::Fit(*base, tb.dataset, tc);

  int64_t max_points = basm::FastMode() ? 300 : 700;
  bench::EmbeddedReps base_emb = bench::EmbedRepresentations(
      *base, tb.dataset, max_points, /*by_city=*/true);
  bench::EmbeddedReps basm_emb = bench::EmbedRepresentations(
      *tb.model, tb.dataset, max_points, /*by_city=*/true);

  bench::ReportEmbedding("(a) Base model, colored by city:", base_emb);
  bench::ReportEmbedding("(b) BASM, colored by city:", basm_emb);

  double base_sep =
      analysis::SeparationRatio(base_emb.points, base_emb.groups);
  double basm_sep =
      analysis::SeparationRatio(basm_emb.points, basm_emb.groups);
  std::printf("\ncity separation: Base %.3f vs BASM %.3f (expect BASM higher)\n",
              base_sep, basm_sep);
  return 0;
}
