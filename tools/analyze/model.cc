#include "tools/analyze/model.h"

#include <cctype>

namespace basm::analyze {
namespace {

bool ContainsWord(const std::string& text, const std::string& word) {
  size_t at = 0;
  while ((at = text.find(word, at)) != std::string::npos) {
    bool left_ok =
        at == 0 || (!std::isalnum(static_cast<unsigned char>(text[at - 1])) &&
                    text[at - 1] != '_');
    size_t end = at + word.size();
    bool right_ok = end >= text.size() ||
                    (!std::isalnum(static_cast<unsigned char>(text[end])) &&
                     text[end] != '_');
    if (left_ok && right_ok) return true;
    at = end;
  }
  return false;
}

std::string SimpleName(const std::string& qualified) {
  size_t at = qualified.rfind("::");
  return at == std::string::npos ? qualified : qualified.substr(at + 2);
}

}  // namespace

ProgramModel::ProgramModel(const std::vector<FileScan>& files) {
  // Class tables. `class_members_` keys by simple name (receivers are
  // unqualified); lock ownership keys by qualified name so nested classes
  // (FeatureStore::Shard) produce distinct lock nodes.
  for (const FileScan& file : files) {
    for (const ClassScan& cls : file.classes) {
      auto& members = class_members_[SimpleName(cls.name)];
      for (const Member& m : cls.members) {
        members.emplace(m.name, m.type_text);
      }
      for (const std::string& lock : cls.lock_members) {
        lock_leaf_owners_[lock].insert(cls.name);
        class_locks_[cls.name].insert(lock);
      }
    }
    for (const FunctionScan& fn : file.functions) {
      methods_[fn.cls + "::" + fn.name].push_back(&fn);
    }
  }

  // Direct acquisitions, then a fixed point folding in resolvable callees.
  for (const auto& [key, fns] : methods_) {
    auto& set = acquires_[key];
    for (const FunctionScan* fn : fns) {
      for (const LockAcq& acq : fn->locks) {
        set.insert(LockNode(fn->cls, acq.expr));
      }
    }
  }
  for (int round = 0; round < 12; ++round) {
    bool changed = false;
    for (const auto& [key, fns] : methods_) {
      auto& set = acquires_[key];
      for (const FunctionScan* fn : fns) {
        for (const Call& call : fn->calls) {
          std::string callee = ResolveCallee(fn->cls, call);
          if (callee.empty() || callee == key) continue;
          auto it = acquires_.find(callee);
          if (it == acquires_.end()) continue;
          for (const std::string& node : it->second) {
            if (set.insert(node).second) changed = true;
          }
        }
      }
    }
    if (!changed) break;
  }
}

std::string ProgramModel::LockNode(const std::string& cls,
                                   const std::string& expr) const {
  std::string leaf = LockLeaf(expr);
  if (!cls.empty()) {
    auto it = class_locks_.find(cls);
    if (it != class_locks_.end() && it->second.count(leaf)) {
      return cls + "::" + leaf;
    }
    // A nested class of `cls` owning the leaf (e.g. FeatureStore::Shard::mu
    // locked from a FeatureStore method through a local Shard reference).
    for (const auto& [qualified, locks] : class_locks_) {
      if (qualified.rfind(cls + "::", 0) == 0 && locks.count(leaf)) {
        return qualified + "::" + leaf;
      }
    }
  }
  auto owners = lock_leaf_owners_.find(leaf);
  if (owners != lock_leaf_owners_.end() && owners->second.size() == 1) {
    return *owners->second.begin() + "::" + leaf;
  }
  return (cls.empty() ? "?" : cls) + "::" + leaf;
}

std::string ProgramModel::ResolveCallee(const std::string& caller_cls,
                                        const Call& call) const {
  if (call.receiver.empty()) {
    if (caller_cls.empty()) return "";
    std::string key = caller_cls + "::" + call.name;
    return methods_.count(key) ? key : "";
  }
  // Static-style call through a class name (Status::Ok, Geohash::Encode).
  if (IsClass(call.receiver)) {
    std::string key = call.receiver + "::" + call.name;
    if (methods_.count(key)) return key;
  }
  // Member receiver: type the member from the caller's class table, then
  // find a scanned class mentioned in its declared type.
  auto members = class_members_.find(SimpleName(caller_cls));
  if (members == class_members_.end()) return "";
  auto member = members->second.find(call.receiver);
  if (member == members->second.end()) return "";
  for (const auto& [klass, _] : class_members_) {
    if (!ContainsWord(member->second, klass)) continue;
    std::string key = klass + "::" + call.name;
    if (methods_.count(key)) return key;
  }
  return "";
}

}  // namespace basm::analyze
