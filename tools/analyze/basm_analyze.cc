// basm_analyze: the multi-pass static analysis gate.
//
//   basm_analyze [--json[=FILE]] [--baseline=FILE] [--passes=a,b] [paths...]
//   basm_analyze --list-passes
//
// Paths default to `src` (resolved against BASM_SOURCE_DIR when the
// relative directory is absent). Exit 0 when clean, 1 on findings, 2 on
// usage errors. See DESIGN §15 for the pass catalog.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tools/analyze/analyze.h"
#include "tools/lint.h"

int main(int argc, char** argv) {
  using basm::analyze::Analyze;
  using basm::analyze::AnalyzeOptions;
  using basm::analyze::AnalyzeReport;

  bool json = false;
  std::string json_file;
  std::string baseline_file;
  AnalyzeOptions options;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-passes") {
      for (const auto& pass : basm::analyze::Passes()) {
        std::cout << pass.id << "\n    " << pass.rationale << "\n";
      }
      return 0;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_file = arg.substr(7);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_file = arg.substr(11);
    } else if (arg.rfind("--passes=", 0) == 0) {
      std::string list = arg.substr(9);
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        std::string id = list.substr(
            start, comma == std::string::npos ? comma : comma - start);
        if (!id.empty()) options.passes.push_back(id);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: basm_analyze [--json[=FILE]] [--baseline=FILE] "
                   "[--passes=a,b] [--list-passes] [paths...]\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "basm_analyze: unknown flag " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (paths.empty()) {
    std::error_code ec;
    if (std::filesystem::is_directory("src", ec)) {
      paths.push_back("src");
    } else {
#ifdef BASM_SOURCE_DIR
      paths.push_back(std::string(BASM_SOURCE_DIR) + "/src");
#else
      std::cerr << "basm_analyze: no paths given and ./src not found\n";
      return 2;
#endif
    }
  }

  if (!baseline_file.empty()) {
    if (!basm::lint::LoadSuppressionsFile(baseline_file, &options.baseline)) {
      std::cerr << "basm_analyze: cannot read baseline " << baseline_file
                << "\n";
      return 2;
    }
  } else {
    options.baseline = basm::analyze::DefaultBaseline();
  }

  AnalyzeReport report = Analyze(paths, options);

  if (json) {
    std::string payload = basm::analyze::ReportJson(report);
    if (json_file.empty()) {
      std::cout << payload;
    } else {
      std::ofstream out(json_file, std::ios::binary);
      if (!out) {
        std::cerr << "basm_analyze: cannot write " << json_file << "\n";
        return 2;
      }
      out << payload;
    }
  }
  if (!json || !json_file.empty()) {
    for (const auto& finding : report.findings) {
      std::cerr << basm::lint::FormatFinding(finding) << "\n";
    }
    std::cerr << "basm_analyze: " << report.files_scanned << " files, "
              << report.findings.size() << " finding(s), "
              << report.suppressed_inline << " inline allow(s), "
              << report.suppressed_baseline << " baselined\n";
  }
  return report.findings.empty() ? 0 : 1;
}
