#include <algorithm>
#include <cmath>
#include <set>

#include "data/batch.h"
#include "data/geohash.h"
#include "data/schema.h"
#include "data/synth.h"
#include "gtest/gtest.h"
#include "metrics/metrics.h"

namespace basm::data {
namespace {

SynthConfig TinyConfig() {
  SynthConfig c = SynthConfig::Eleme();
  c.num_users = 300;
  c.num_items = 200;
  c.num_cities = 5;
  c.requests_per_day = 80;
  c.days = 3;
  c.test_day = 2;
  c.seq_len = 6;
  return c;
}

TEST(TimePeriodTest, HourMapping) {
  EXPECT_EQ(TimePeriodOfHour(7), TimePeriod::kBreakfast);
  EXPECT_EQ(TimePeriodOfHour(12), TimePeriod::kLunch);
  EXPECT_EQ(TimePeriodOfHour(15), TimePeriod::kAfternoonTea);
  EXPECT_EQ(TimePeriodOfHour(19), TimePeriod::kDinner);
  EXPECT_EQ(TimePeriodOfHour(23), TimePeriod::kNight);
  EXPECT_EQ(TimePeriodOfHour(2), TimePeriod::kNight);
  EXPECT_EQ(TimePeriodOfHour(4), TimePeriod::kNight);
}

TEST(GeohashTest, EncodeDecodeRoundTrip) {
  double lat = 30.274, lon = 120.155;  // Hangzhou
  uint64_t cell = Geohash::Encode(lat, lon, 40);
  double dlat, dlon;
  Geohash::DecodeCenter(cell, 40, &dlat, &dlon);
  EXPECT_NEAR(dlat, lat, 0.001);
  EXPECT_NEAR(dlon, lon, 0.001);
}

TEST(GeohashTest, NearbyPointsShareParent) {
  uint64_t a = Geohash::Encode(30.2741, 120.1551, 40);
  uint64_t b = Geohash::Encode(30.2742, 120.1552, 40);
  EXPECT_EQ(Geohash::Parent(a, 40, 20), Geohash::Parent(b, 40, 20));
}

TEST(GeohashTest, FarPointsDiffer) {
  uint64_t a = Geohash::Encode(30.0, 120.0, 30);
  uint64_t b = Geohash::Encode(-30.0, -120.0, 30);
  EXPECT_NE(a, b);
  EXPECT_GT(Geohash::CenterDistance(a, b, 30), 50.0);
}

TEST(GeohashTest, TextFormStable) {
  uint64_t cell = Geohash::Encode(30.274, 120.155, 40);
  std::string s = Geohash::ToString(cell, 40);
  EXPECT_EQ(s.size(), 8u);  // 40 bits / 5 bits per char
  EXPECT_EQ(s, Geohash::ToString(cell, 40));
}

TEST(WorldTest, DeterministicUnderSeed) {
  SynthConfig c = TinyConfig();
  World w1(c), w2(c);
  for (int64_t u = 0; u < c.num_users; u += 37) {
    EXPECT_EQ(w1.user(u).city, w2.user(u).city);
    EXPECT_EQ(w1.user(u).taste, w2.user(u).taste);
  }
  Rng r1(9), r2(9);
  auto h1 = w1.SampleHistory(5, 8, r1);
  auto h2 = w2.SampleHistory(5, 8, r2);
  ASSERT_EQ(h1.size(), h2.size());
  for (size_t i = 0; i < h1.size(); ++i) {
    EXPECT_EQ(h1[i].item_id, h2[i].item_id);
  }
}

TEST(WorldTest, CityPoolsPartitionItems) {
  SynthConfig c = TinyConfig();
  World w(c);
  int64_t total = 0;
  for (int64_t city = 0; city < c.num_cities; ++city) {
    for (int32_t item : w.CityItems(static_cast<int32_t>(city))) {
      EXPECT_EQ(w.item(item).city, city);
      ++total;
    }
  }
  EXPECT_GE(total, c.num_items);  // padding may duplicate a few
}

TEST(WorldTest, ExposurePeaksAtMealHours) {
  World w(TinyConfig());
  const auto& hours = w.hour_exposure();
  EXPECT_GT(hours[12], hours[15]);  // lunch > tea
  EXPECT_GT(hours[19], hours[22]);  // dinner > night
  EXPECT_GT(hours[12], hours[3]);   // lunch >> pre-dawn
}

TEST(WorldTest, UserSideWeightHigherAtLunchThanNight) {
  World w(TinyConfig());
  EXPECT_GT(w.UserSideWeight(TimePeriod::kLunch, 0),
            w.UserSideWeight(TimePeriod::kNight, 0));
  EXPECT_LT(w.ItemSideWeight(TimePeriod::kLunch, 0),
            w.ItemSideWeight(TimePeriod::kNight, 0));
}

TEST(WorldTest, UserSideWeightHigherInActiveCities) {
  World w(TinyConfig());
  // City 0 is the most active tier.
  EXPECT_GT(w.UserSideWeight(TimePeriod::kLunch, 0),
            w.UserSideWeight(TimePeriod::kLunch, 4));
}

TEST(WorldTest, ClickLogitRespondsToPlantedEffects) {
  SynthConfig c = TinyConfig();
  World w(c);
  // Find a (user, preferred item, non-preferred item) triple in one city.
  for (int32_t u = 0; u < 50; ++u) {
    const auto& up = w.user(u);
    int32_t pref = -1, nonpref = -1;
    for (int32_t i : w.CityItems(up.city)) {
      bool p = w.IsPreferredCategory(up.taste, TimePeriod::kLunch,
                                     w.item(i).category);
      if (p && pref < 0) pref = i;
      if (!p && nonpref < 0) nonpref = i;
    }
    if (pref < 0 || nonpref < 0) continue;
    float lp = w.ClickLogit(u, pref, 12, 0, up.city, {});
    float ln = w.ClickLogit(u, nonpref, 12, 0, up.city, {});
    // Not strictly ordered (popularity/price also differ), but preferred
    // items should usually win; check the affinity term is present by
    // removing other variation: same item, different position.
    float l0 = w.ClickLogit(u, pref, 12, 0, up.city, {});
    float l9 = w.ClickLogit(u, pref, 12, 9, up.city, {});
    EXPECT_GT(l0, l9);  // position bias decreasing
    (void)lp;
    (void)ln;
    return;
  }
  FAIL() << "no suitable user/item pair found";
}

TEST(WorldTest, SequenceMatchRaisesLogit) {
  SynthConfig c = TinyConfig();
  World w(c);
  int32_t user = 0;
  const auto& up = w.user(user);
  int32_t item = w.CityItems(up.city)[0];
  BehaviorEvent match;
  match.category = w.item(item).category;
  match.time_period = static_cast<int32_t>(TimePeriodOfHour(12));
  std::vector<BehaviorEvent> matching(5, match);
  BehaviorEvent other = match;
  other.category = (match.category + 1) % static_cast<int32_t>(c.num_categories);
  std::vector<BehaviorEvent> differing(5, other);
  EXPECT_GT(w.ClickLogit(user, item, 12, 0, up.city, matching),
            w.ClickLogit(user, item, 12, 0, up.city, differing));
}

TEST(GenerateDatasetTest, SizesAndSplit) {
  SynthConfig c = TinyConfig();
  Dataset ds = GenerateDataset(c);
  EXPECT_EQ(static_cast<int64_t>(ds.examples.size()),
            c.days * c.requests_per_day * c.candidates_per_request);
  auto train = ds.TrainExamples();
  auto test = ds.TestExamples();
  EXPECT_EQ(train.size() + test.size(), ds.examples.size());
  EXPECT_EQ(static_cast<int64_t>(test.size()),
            c.requests_per_day * c.candidates_per_request);
  for (const Example* e : test) EXPECT_GE(e->day, c.test_day);
}

TEST(GenerateDatasetTest, FeatureRangesValid) {
  SynthConfig c = TinyConfig();
  Dataset ds = GenerateDataset(c);
  const Schema& s = ds.schema;
  for (const Example& e : ds.examples) {
    EXPECT_GE(e.user_id, 0);
    EXPECT_LT(e.user_id, s.num_users);
    EXPECT_LT(e.item_id, s.num_items);
    EXPECT_LT(e.category, s.num_categories);
    EXPECT_LT(e.brand, s.num_brands);
    EXPECT_LT(e.city, s.num_cities);
    EXPECT_LT(e.geohash, s.num_geohash);
    EXPECT_LT(e.hour, 24);
    EXPECT_LT(e.time_period, kNumTimePeriods);
    EXPECT_LT(e.position, s.num_positions);
    EXPECT_LT(e.cross_spend_price, s.num_cross_spend_price);
    EXPECT_LT(e.cross_age_category, s.num_cross_age_category);
    EXPECT_EQ(e.time_period,
              static_cast<int32_t>(TimePeriodOfHour(e.hour)));
    EXPECT_GE(e.gt_prob, 0.0f);
    EXPECT_LE(e.gt_prob, 1.0f);
    EXPECT_LE(static_cast<int64_t>(e.behaviors.size()), c.seq_len);
  }
}

TEST(GenerateDatasetTest, LabelRateTracksGtProb) {
  Dataset ds = GenerateDataset(TinyConfig());
  double label_sum = 0.0, prob_sum = 0.0;
  for (const Example& e : ds.examples) {
    label_sum += e.label;
    prob_sum += e.gt_prob;
  }
  double n = static_cast<double>(ds.examples.size());
  EXPECT_NEAR(label_sum / n, prob_sum / n, 0.02);
  EXPECT_GT(label_sum / n, 0.01);
  EXPECT_LT(label_sum / n, 0.5);
}

TEST(GenerateDatasetTest, CtrVariesAcrossHoursAndCities) {
  SynthConfig c = TinyConfig();
  c.requests_per_day = 400;  // denser for stable group CTRs
  Dataset ds = GenerateDataset(c);
  std::vector<float> labels;
  std::vector<int32_t> tps, cities;
  for (const Example& e : ds.examples) {
    labels.push_back(e.label);
    tps.push_back(e.time_period);
    cities.push_back(e.city);
  }
  auto by_tp = metrics::GroupCtr(labels, tps);
  double mn = 1.0, mx = 0.0;
  for (auto& [g, st] : by_tp) {
    if (st.impressions < 100) continue;
    mn = std::min(mn, st.ctr());
    mx = std::max(mx, st.ctr());
  }
  EXPECT_GT(mx, mn * 1.3) << "planted time-period CTR spread missing";
}

TEST(GenerateDatasetTest, PublicConfigSparser) {
  SynthConfig e = TinyConfig();
  SynthConfig p = SynthConfig::Public();
  p.num_users = e.num_users;
  p.num_items = e.num_items;
  p.num_cities = e.num_cities;
  p.requests_per_day = e.requests_per_day;
  p.days = e.days;
  p.test_day = e.test_day;
  p.seq_len = e.seq_len;
  Dataset de = GenerateDataset(e);
  Dataset dp = GenerateDataset(p);
  auto ctr = [](const Dataset& d) {
    double s = 0;
    for (const auto& ex : d.examples) s += ex.label;
    return s / d.examples.size();
  };
  EXPECT_LT(ctr(dp), ctr(de) * 0.6);
}

TEST(BatchTest, ShapesAndContents) {
  SynthConfig c = TinyConfig();
  Dataset ds = GenerateDataset(c);
  auto train = ds.TrainExamples();
  std::vector<const Example*> slice(train.begin(), train.begin() + 10);
  Batch b = MakeBatch(slice, ds.schema);
  EXPECT_EQ(b.size, 10);
  EXPECT_EQ(b.seq_len, c.seq_len);
  EXPECT_EQ(static_cast<int64_t>(b.user_id.size()), 10);
  EXPECT_EQ(static_cast<int64_t>(b.seq_item.size()), 10 * c.seq_len);
  EXPECT_EQ(b.labels.numel(), 10);
  EXPECT_EQ(b.user_dense.rows(), 10);
  EXPECT_EQ(b.user_dense.cols(), 3);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(b.user_id[i], slice[i]->user_id);
    EXPECT_EQ(b.labels[i], slice[i]->label);
  }
}

TEST(BatchTest, FilterMaskSubsetOfMask) {
  SynthConfig c = TinyConfig();
  Dataset ds = GenerateDataset(c);
  auto train = ds.TrainExamples();
  std::vector<const Example*> slice(train.begin(), train.begin() + 50);
  Batch b = MakeBatch(slice, ds.schema);
  for (int64_t i = 0; i < b.seq_mask.numel(); ++i) {
    EXPECT_LE(b.seq_filter_mask[i], b.seq_mask[i]);
  }
}

TEST(BatchTest, FilterMaskMatchesTimePeriodAndCity) {
  SynthConfig c = TinyConfig();
  Dataset ds = GenerateDataset(c);
  auto train = ds.TrainExamples();
  std::vector<const Example*> slice(train.begin(), train.begin() + 50);
  Batch b = MakeBatch(slice, ds.schema);
  for (int64_t i = 0; i < b.size; ++i) {
    const Example& e = *slice[i];
    for (size_t j = 0; j < e.behaviors.size(); ++j) {
      bool expect = e.behaviors[j].time_period == e.time_period &&
                    e.behaviors[j].city == e.city;
      EXPECT_EQ(b.seq_filter_mask.at(i, static_cast<int64_t>(j)),
                expect ? 1.0f : 0.0f);
    }
  }
}

TEST(BatcherTest, CoversEveryExampleOncePerEpoch) {
  SynthConfig c = TinyConfig();
  Dataset ds = GenerateDataset(c);
  auto train = ds.TrainExamples();
  Batcher batcher(train, ds.schema, 64, /*shuffle_seed=*/5);
  Batch b;
  int64_t total = 0;
  std::multiset<int32_t> seen_requests;
  while (batcher.Next(&b)) {
    total += b.size;
    for (int32_t r : b.request_id) seen_requests.insert(r);
  }
  EXPECT_EQ(total, static_cast<int64_t>(train.size()));
  EXPECT_EQ(batcher.batches_per_epoch(),
            (total + 63) / 64);
}

TEST(BatcherTest, ReshufflesBetweenEpochs) {
  SynthConfig c = TinyConfig();
  Dataset ds = GenerateDataset(c);
  auto train = ds.TrainExamples();
  Batcher batcher(train, ds.schema, 32, 7);
  Batch first_epoch;
  ASSERT_TRUE(batcher.Next(&first_epoch));
  while (batcher.Next(&first_epoch)) {
  }
  batcher.Reset();
  Batch second_epoch;
  ASSERT_TRUE(batcher.Next(&second_epoch));
  // Different order with overwhelming probability.
  bool differs = false;
  for (int64_t i = 0; i < std::min<int64_t>(first_epoch.size,
                                            second_epoch.size);
       ++i) {
    if (first_epoch.user_id[i] != second_epoch.user_id[i]) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(SchemaTest, VocabAndColumnCounts) {
  SynthConfig c = TinyConfig();
  World w(c);
  const Schema& s = w.schema();
  EXPECT_GT(s.TotalVocab(), s.num_users);
  EXPECT_EQ(s.NumFeatureColumns(), 28);
  EXPECT_EQ(s.num_cross_spend_price, s.num_spend_buckets * s.num_price_buckets);
}

}  // namespace
}  // namespace basm::data
