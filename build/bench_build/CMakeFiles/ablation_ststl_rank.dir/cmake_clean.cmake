file(REMOVE_RECURSE
  "../bench/ablation_ststl_rank"
  "../bench/ablation_ststl_rank.pdb"
  "CMakeFiles/ablation_ststl_rank.dir/ablation_ststl_rank.cc.o"
  "CMakeFiles/ablation_ststl_rank.dir/ablation_ststl_rank.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ststl_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
