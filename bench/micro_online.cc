// Online-learning bench: the cost of keeping a serving fleet fresh. Three
// measurements around the online/ subsystem:
//
//   1. checkpoint codec cost — serialize / verify / rebuild a full BASM,
//      and the image size the registry stores per version;
//   2. incremental publish cost — the train+serialize+publish+install cycle
//      of OnlineTrainer::PublishNow over a fresh feedback buffer;
//   3. hot-swap tax under load — the same closed-loop run twice against one
//      engine configuration, first with a frozen model and then with a
//      background publisher swapping versions mid-load. The delta in
//      qps/tails is the serving-side cost of online learning (the design
//      goal is ~zero: swaps must never reject or block a request).
//
// Plain main() (not google-benchmark) for the same reason as micro_engine:
// each arm is one long closed-loop run with its own recorder.

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/timer.h"
#include "data/synth.h"
#include "core/model_zoo.h"
#include "nn/serialize.h"
#include "online/model_registry.h"
#include "online/model_slot.h"
#include "online/online_trainer.h"
#include "runtime/load_generator.h"
#include "runtime/serving_engine.h"
#include "feature_store/feature_store.h"
#include "feature_store/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

namespace {

using namespace basm;

/// Deterministic click-feedback rows: one user's exposure stream in its
/// home city, positions cycling within the schema's slot cardinality.
std::vector<data::Example> MakeFeedback(const data::World& world,
                                        feature_store::FeatureServer& features,
                                        int32_t user, size_t n,
                                        uint64_t seed) {
  Rng rng(seed);
  auto behaviors = features.GetUserFeatures(user).behaviors;
  int32_t city = world.user(user).city;
  const std::vector<int32_t>& items = world.CityItems(city);
  std::vector<data::Example> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(world.MakeExample(user, items[i % items.size()],
                                    /*hour=*/18, /*weekday=*/3,
                                    static_cast<int32_t>(i % 8), city,
                                    /*day=*/0, static_cast<int32_t>(i),
                                    behaviors, rng));
  }
  return out;
}

}  // namespace

int main() {
  data::SynthConfig config = data::SynthConfig::Eleme();
  config.num_users = 2000;
  config.num_items = 1500;
  config.num_cities = 8;
  data::World world(config);
  feature_store::FeatureServer features(world, world.config().seq_len, 3);
  feature_store::FeatureStore store(&features);
  serving::RecallIndex recall(world);

  const bool fast = basm::FastMode();
  const int64_t requests =
      basm::EnvInt("BASM_ONLINE_REQUESTS", fast ? 200 : 1000);
  const int publishes = fast ? 3 : 5;
  const size_t feedback_per_publish = fast ? 64 : 256;

  // ---- 1. checkpoint codec cost ---------------------------------------
  auto model =
      core::CreateModel(core::ModelKind::kBasm, world.schema(), 42);
  model->SetTraining(false);

  WallTimer timer;
  std::string image = nn::SerializeParameters(*model);
  double serialize_ms = timer.ElapsedMillis();
  timer.Reset();
  Status verify = nn::VerifyCheckpointImage(image);
  double verify_ms = timer.ElapsedMillis();
  timer.Reset();
  auto rebuilt =
      core::CreateModel(core::ModelKind::kBasm, world.schema(), 7);
  Status load = nn::DeserializeParameters(*rebuilt, image);
  double rebuild_ms = timer.ElapsedMillis();
  std::printf("checkpoint codec (%s, %.2f MiB/version)\n",
              model->name().c_str(),
              static_cast<double>(image.size()) / (1024.0 * 1024.0));
  std::printf("  serialize %.2f ms  verify %.2f ms (%s)  rebuild %.2f ms "
              "(%s)\n",
              serialize_ms, verify_ms, verify.ok() ? "ok" : "FAIL",
              rebuild_ms, load.ok() ? "ok" : "FAIL");

  // ---- 2. incremental publish cost ------------------------------------
  online::ModelRegistry registry(/*keep_last=*/4);
  online::ModelSlot slot;
  online::OnlineTrainerConfig trainer_config;
  trainer_config.model_kind = core::ModelKind::kBasm;
  trainer_config.model_seed = 42;
  online::OnlineTrainer trainer(world.schema(), &registry, &slot,
                                trainer_config);
  Status bootstrap = trainer.PublishModel(*model, "bootstrap");
  BASM_CHECK(bootstrap.ok()) << bootstrap.message();

  std::printf("\nincremental publish (%zu feedback examples/update)\n",
              feedback_per_publish);
  for (int p = 0; p < publishes; ++p) {
    for (data::Example& e : MakeFeedback(world, features, /*user=*/p + 1,
                                         feedback_per_publish,
                                         /*seed=*/100 + p)) {
      trainer.SubmitFeedback(std::move(e));
    }
    Status published = trainer.PublishNow("bench-" + std::to_string(p));
    BASM_CHECK(published.ok()) << published.message();
    online::OnlineTrainerStats stats = trainer.stats();
    std::printf("  v%llu: %.1f ms end-to-end (train+serialize+publish+"
                "install)\n",
                static_cast<unsigned long long>(stats.last_version),
                stats.last_update_seconds * 1e3);
  }
  std::printf("  registry retains %zu versions (keep_last 4), head v%llu\n",
              registry.size(),
              static_cast<unsigned long long>(registry.head_version()));

  // ---- 3. hot-swap tax under load -------------------------------------
  serving::Pipeline pipeline(world, &store, &recall, &slot,
                             /*recall_size=*/24, /*expose_k=*/8);
  runtime::LoadConfig load_config;
  load_config.num_requests = requests;
  load_config.concurrency = 16;

  std::printf("\nhot-swap tax (4 workers, batch<=4, %lld requests)\n",
              static_cast<long long>(requests));
  std::printf("%-16s %-9s %-9s %-9s %-9s %-7s %s\n", "arm", "qps", "p50_us",
              "p95_us", "p99_us", "rej", "swaps");
  for (bool swapping : {false, true}) {
    runtime::EngineConfig ec;
    ec.num_workers = 4;
    ec.max_batch_requests = 4;
    ec.max_wait_micros = 200;
    runtime::ServingEngine engine(&pipeline, ec);
    runtime::LoadGenerator generator(world, load_config);

    int64_t swaps_before = slot.swap_count();
    runtime::LoadReport report;
    std::thread driver([&] { report = generator.Run(engine); });
    if (swapping) {
      for (int p = 0; p < publishes; ++p) {
        for (data::Example& e : MakeFeedback(world, features,
                                             /*user=*/50 + p,
                                             feedback_per_publish,
                                             /*seed=*/300 + p)) {
          trainer.SubmitFeedback(std::move(e));
        }
        Status published = trainer.PublishNow("load-" + std::to_string(p));
        BASM_CHECK(published.ok()) << published.message();
      }
    }
    driver.join();
    runtime::LatencySnapshot snap = engine.Stats();
    std::printf("%-16s %-9.1f %-9.0f %-9.0f %-9.0f %-7lld %lld\n",
                swapping ? "publishing" : "frozen model", report.qps,
                snap.p50_micros, snap.p95_micros, snap.p99_micros,
                static_cast<long long>(report.rejected),
                static_cast<long long>(slot.swap_count() - swaps_before));
  }
  std::printf("\nserving head: v%llu (\"%s\")\n",
              static_cast<unsigned long long>(slot.current_version()),
              registry.Head() != nullptr ? registry.Head()->note.c_str()
                                         : "none");
  return 0;
}
