#ifndef BASM_TOOLS_ANALYZE_SCANNER_H_
#define BASM_TOOLS_ANALYZE_SCANNER_H_

#include <string>
#include <vector>

namespace basm::analyze {

/// One `#include "..."` edge out of a file.
struct Include {
  std::string target;  ///< the quoted include path, verbatim
  int line = 0;        ///< 1-based
};

/// One call site inside a function body, with the set of mutexes held at
/// the call. `receiver` is the last identifier of the object expression
/// (`pipeline_->feature_store()->Prefetch(` records receiver
/// `feature_store`), empty for free / same-class calls.
struct Call {
  std::string receiver;
  std::string name;
  std::string arg_head;  ///< first argument text, for CondVar-Wait matching
  int line = 0;
  std::vector<std::string> locks_held;  ///< lock exprs active at this site
};

/// One `MutexLock guard(&expr)` acquisition.
struct LockAcq {
  std::string expr;  ///< the locked expression, e.g. `mu_` or `shard.mu`
  int line = 0;
  std::vector<std::string> held;  ///< lock exprs already held at this point
};

/// One data-member declaration inside a class body (used to resolve member
/// receivers like `queue_` to their class).
struct Member {
  std::string type_text;  ///< declaration text left of the member name
  std::string name;
};

/// One scanned function/method body.
struct FunctionScan {
  std::string cls;   ///< enclosing or `X::`-qualifying class; empty if free
  std::string name;  ///< unqualified function name
  int start_line = 0;  ///< line of the opening brace
  int end_line = 0;    ///< line of the closing brace
  std::vector<Call> calls;
  std::vector<LockAcq> locks;
};

/// One scanned class/struct body.
struct ClassScan {
  std::string name;  ///< `Outer::Inner`-qualified for nested classes
  std::vector<Member> members;
  std::vector<std::string> lock_members;  ///< names of basm::Mutex members
};

/// The full scan of one translation unit / header.
struct FileScan {
  std::string path;
  std::string module;  ///< first dir under src/, empty if not under src/
  bool ok = false;     ///< false when the file could not be read
  std::vector<std::string> raw_lines;       ///< for inline-allow checks
  std::vector<std::string> stripped_lines;  ///< comment/string-stripped
  std::vector<Include> includes;
  std::vector<FunctionScan> functions;
  std::vector<ClassScan> classes;
};

/// Module of a path: the component after the last `src/`, empty otherwise.
/// (`tests/lint_fixtures/analyze/x/src/data/bad.h` scans as module `data`,
/// which is what lets fixtures exercise the layering pass.)
std::string ModuleOf(const std::string& path);

/// Scans `content` as if read from `path`. Pure (no filesystem) so tests
/// can feed synthetic sources.
FileScan ScanContent(const std::string& path, const std::string& content);

/// Reads and scans one file; `ok` is false when unreadable.
FileScan ScanFile(const std::string& path);

/// Last component of a lock expression: `shard.mu` -> `mu`,
/// `this->mu_` -> `mu_`. Used to match lock exprs to declared members.
std::string LockLeaf(const std::string& expr);

}  // namespace basm::analyze

#endif  // BASM_TOOLS_ANALYZE_SCANNER_H_
