#include "runtime/load_generator.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/timer.h"

namespace basm::runtime {

LoadGenerator::LoadGenerator(const data::World& world, LoadConfig config)
    : world_(world), config_(config), traffic_rng_(config.seed) {
  BASM_CHECK_GT(config_.num_requests, 0);
  BASM_CHECK_GT(config_.concurrency, 0);
}

serving::Request LoadGenerator::MakeRequest(int64_t i) {
  // Fork per request id so the stream does not depend on how many requests
  // were generated before (replayable across serial/engine runs).
  Rng rng = traffic_rng_.Fork(static_cast<uint64_t>(i));
  serving::Request req;
  req.user_id = world_.SampleUser(rng);
  req.hour = world_.SampleHour(rng);
  req.weekday = static_cast<int32_t>(i) % 7;
  req.city = world_.user(req.user_id).city;
  req.day = 0;
  req.request_id = static_cast<int32_t>(i);
  return req;
}

LoadReport LoadGenerator::Run(ServingEngine& engine) {
  LoadReport report;
  WallTimer timer;
  std::deque<std::future<SlateResult>> inflight;
  std::vector<int64_t> stale_ages;

  auto settle = [&](std::future<SlateResult> future) {
    SlateResult result = future.get();
    switch (result.status.code()) {
      case StatusCode::kOk:
        ++report.ok;
        if (result.degraded) {
          ++report.degraded;
          if (result.degraded_mode == SlateResult::DegradedMode::kStale) {
            ++report.degraded_stale;
            stale_ages.push_back(result.stale_age_micros);
          } else if (result.degraded_mode ==
                     SlateResult::DegradedMode::kEmpty) {
            ++report.degraded_empty;
          }
        }
        break;
      case StatusCode::kUnavailable:
        ++report.rejected;
        break;
      case StatusCode::kDeadlineExceeded:
        ++report.timed_out;
        break;
      default:
        ++report.cancelled;
        break;
    }
  };

  for (int64_t i = 0; i < config_.num_requests; ++i) {
    if (static_cast<int32_t>(inflight.size()) >= config_.concurrency) {
      settle(std::move(inflight.front()));
      inflight.pop_front();
    }
    inflight.push_back(
        engine.Submit(MakeRequest(i), {}, config_.deadline_micros));
  }
  while (!inflight.empty()) {
    settle(std::move(inflight.front()));
    inflight.pop_front();
  }

  report.wall_seconds = timer.ElapsedSeconds();
  if (report.wall_seconds > 0.0) {
    report.qps =
        static_cast<double>(config_.num_requests) / report.wall_seconds;
  }
  if (!stale_ages.empty()) {
    // Exact (not histogram) quantiles: the run keeps every served age, so
    // the TTL drill can assert the literal max against the budget.
    std::sort(stale_ages.begin(), stale_ages.end());
    auto at = [&stale_ages](double q) {
      size_t idx = static_cast<size_t>(q *
                                       static_cast<double>(stale_ages.size() - 1));
      return stale_ages[idx];
    };
    report.stale_age_p50_micros = at(0.50);
    report.stale_age_p99_micros = at(0.99);
    report.stale_age_max_micros = stale_ages.back();
  }
  return report;
}

LoadReport LoadGenerator::RunSerial(const serving::Pipeline& pipeline) {
  LoadReport report;
  WallTimer timer;
  Rng recall_rng(config_.seed ^ 0x5E1A1);
  for (int64_t i = 0; i < config_.num_requests; ++i) {
    serving::Request req = MakeRequest(i);
    volatile size_t sink = pipeline.Serve(req, recall_rng).size();
    (void)sink;
    ++report.ok;
  }
  report.wall_seconds = timer.ElapsedSeconds();
  if (report.wall_seconds > 0.0) {
    report.qps =
        static_cast<double>(config_.num_requests) / report.wall_seconds;
  }
  return report;
}

std::string LoadReport::ToString() const {
  char line[256];
  std::snprintf(line, sizeof(line),
                "%lld requests in %.2fs (%.1f qps): %lld ok (%lld degraded: "
                "%lld stale, %lld empty), %lld rejected, %lld timed out, "
                "%lld cancelled",
                static_cast<long long>(ok + rejected + timed_out + cancelled),
                wall_seconds, qps, static_cast<long long>(ok),
                static_cast<long long>(degraded),
                static_cast<long long>(degraded_stale),
                static_cast<long long>(degraded_empty),
                static_cast<long long>(rejected),
                static_cast<long long>(timed_out),
                static_cast<long long>(cancelled));
  std::string out = line;
  if (degraded_stale > 0) {
    std::snprintf(line, sizeof(line),
                  "; stale age micros p50 %lld p99 %lld max %lld",
                  static_cast<long long>(stale_age_p50_micros),
                  static_cast<long long>(stale_age_p99_micros),
                  static_cast<long long>(stale_age_max_micros));
    out += line;
  }
  return out;
}

}  // namespace basm::runtime
