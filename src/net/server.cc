#include "net/server.h"

#include <cstdio>
#include <future>
#include <utility>

#include "common/logging.h"

namespace basm::net {

FrontendCore::FrontendCore(std::vector<runtime::ServingEngine*> replicas,
                           Router* router, FrontendConfig config)
    : replicas_(std::move(replicas)), router_(router), config_(config) {
  BASM_CHECK(!replicas_.empty());
  BASM_CHECK(router_ != nullptr);
  BASM_CHECK_EQ(router_->num_replicas(),
                static_cast<int32_t>(replicas_.size()));
  BASM_CHECK_GE(config_.max_failovers, 0);
  for (runtime::ServingEngine* engine : replicas_) {
    BASM_CHECK(engine != nullptr);
  }
  per_replica_.reserve(replicas_.size());
  for (size_t i = 0; i < replicas_.size(); ++i) {
    per_replica_.push_back(std::make_unique<PerReplica>());
  }
}

void FrontendCore::SubmitAsync(const RpcRequest& request,
                               ResponseCallback done) {
  // One heap copy shared across failover attempts: a retry re-reads the
  // request from whichever thread observed the dead replica.
  Dispatch(std::make_shared<const RpcRequest>(request), config_.max_failovers,
           std::move(done));
}

void FrontendCore::Dispatch(std::shared_ptr<const RpcRequest> request,
                            int32_t failovers_left, ResponseCallback done) {
  RpcResponse response;
  response.sequence = request->sequence;
  response.replica = kNoReplica;

  StatusOr<int32_t> routed = router_->Route(request->request.user_id);
  if (!routed.ok()) {
    unroutable_.fetch_add(1, std::memory_order_relaxed);
    response.code = StatusCode::kUnavailable;
    response.message = routed.status().message();
    done(std::move(response));
    return;
  }
  const int32_t r = routed.value();
  runtime::ServingEngine* engine = replicas_[r];
  response.replica = static_cast<uint32_t>(r);

  // Admission control: shed while the replica's backlog is saturated
  // instead of letting the request join a queue it will time out in.
  // Deliberately no breaker report — overload is backpressure, not
  // death, and must not re-home the user's shard.
  const double capacity = static_cast<double>(engine->queue_capacity());
  if (config_.shed_queue_fraction < 1.0 &&
      static_cast<double>(engine->QueueDepth()) >=
          config_.shed_queue_fraction * capacity) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    response.code = StatusCode::kUnavailable;
    response.message = "replica " + std::to_string(r) + " saturated";
    done(std::move(response));
    return;
  }

  engine->SubmitWithCallback(
      request->request, request->candidates, request->deadline_micros,
      [this, request, r, failovers_left,
       done = std::move(done)](runtime::SlateResult result) mutable {
        RpcResponse response;
        response.sequence = request->sequence;
        response.replica = static_cast<uint32_t>(r);

        if (result.status.ok()) {
          router_->ReportSuccess(r);
          per_replica_[r]->ok.fetch_add(1, std::memory_order_relaxed);
          response.code = StatusCode::kOk;
          response.model_version = result.model_version;
          response.degraded = result.degraded;
          response.slate = std::move(result.slate);
          done(std::move(response));
          return;
        }

        if (result.status.code() == StatusCode::kCancelled) {
          // The engine is shut down — this replica is dead. Feed its
          // breaker (consecutive failures open it, removing the replica
          // from the ring walk) and transparently fail the request over to
          // a survivor. A dead engine rejects inline on the submitting
          // thread, so the retry recursion is bounded by the budget.
          router_->ReportFailure(r);
          per_replica_[r]->failed.fetch_add(1, std::memory_order_relaxed);
          if (failovers_left > 0) {
            failover_retries_.fetch_add(1, std::memory_order_relaxed);
            Dispatch(std::move(request), failovers_left - 1, std::move(done));
            return;
          }
        } else if (result.status.code() == StatusCode::kUnavailable) {
          // Queue-full reject from a live replica: counted as shed, breaker
          // untouched (same reasoning as the admission check above).
          shed_.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Deadline-exceeded and other per-request failures: the replica
          // answered, so it is alive; report nothing to the breaker.
          per_replica_[r]->failed.fetch_add(1, std::memory_order_relaxed);
        }
        response.code = result.status.code();
        response.message = result.status.message();
        done(std::move(response));
      });
}

RpcResponse FrontendCore::HandleRequestBlocking(const RpcRequest& request) {
  std::promise<RpcResponse> promise;
  std::future<RpcResponse> future = promise.get_future();
  SubmitAsync(request, [&promise](RpcResponse response) {
    promise.set_value(std::move(response));
  });
  return future.get();
}

void FrontendCore::FillStats(ServerStats* stats) const {
  stats->shed = shed_.load(std::memory_order_relaxed);
  stats->unroutable = unroutable_.load(std::memory_order_relaxed);
  stats->failover_retries = failover_retries_.load(std::memory_order_relaxed);
  stats->per_replica_ok.reserve(per_replica_.size());
  stats->per_replica_failed.reserve(per_replica_.size());
  for (const auto& pr : per_replica_) {
    stats->per_replica_ok.push_back(pr->ok.load(std::memory_order_relaxed));
    stats->per_replica_failed.push_back(
        pr->failed.load(std::memory_order_relaxed));
  }
}

RpcServer::RpcServer(std::vector<runtime::ServingEngine*> replicas,
                     Router* router, ServerConfig config)
    : core_(std::move(replicas), router,
            FrontendConfig{config.shed_queue_fraction, config.max_failovers}),
      config_(config) {
  BASM_CHECK_GT(config_.io_threads, 0);
}

RpcServer::~RpcServer() { Stop(); }

Status RpcServer::Start() {
  MutexLock lock(&lifecycle_mu_);
  BASM_CHECK(!started_) << "RpcServer started twice";
  StatusOr<TcpListener> listener = TcpListener::Bind(config_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  port_ = listener_.port();
  handlers_ = std::make_unique<ThreadPool>(config_.io_threads);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::Ok();
}

void RpcServer::Stop() {
  MutexLock lock(&lifecycle_mu_);
  if (!started_ || stopped_) return;
  stop_.store(true, std::memory_order_relaxed);
  // Handler loops poll the stop flag between frames and exit within one
  // poll interval; the pool drain joins them all. Holding lifecycle_mu_
  // across the drain is the documented hierarchy (DESIGN §10): it makes
  // concurrent Stop calls idempotent and the join is poll-bounded.
  if (acceptor_.joinable()) acceptor_.join();  // basm-analyze: allow(blocking-under-lock)
  handlers_->Shutdown();  // basm-analyze: allow(blocking-under-lock)
  stopped_ = true;
}

void RpcServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    StatusOr<bool> ready = listener_.WaitAcceptable(config_.poll_interval_ms);
    if (!ready.ok()) {
      BASM_LOG(Warning) << "acceptor poll failed: "
                        << ready.status().ToString();
      return;
    }
    if (!ready.value()) continue;  // timeout: re-check the stop flag
    StatusOr<TcpConnection> accepted = listener_.Accept();
    if (!accepted.ok()) {
      BASM_LOG(Warning) << "accept failed: " << accepted.status().ToString();
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    // shared_ptr because std::function requires a copyable closure.
    auto connection =
        std::make_shared<TcpConnection>(std::move(accepted).value());
    handlers_->Submit([this, connection] { HandleConnection(connection); });
  }
}

void RpcServer::HandleConnection(std::shared_ptr<TcpConnection> connection) {
  std::vector<uint8_t> payload;
  while (!stop_.load(std::memory_order_relaxed)) {
    StatusOr<bool> readable =
        connection->WaitReadable(config_.poll_interval_ms);
    if (!readable.ok()) return;
    if (!readable.value()) continue;  // timeout: re-check the stop flag

    uint8_t header_bytes[kFrameHeaderBytes];
    Status read = connection->ReadAll(header_bytes, kFrameHeaderBytes);
    if (!read.ok()) return;  // clean close or broken stream: drop quietly

    FrameHeader header;
    Status decoded = DecodeFrameHeader(header_bytes, kFrameHeaderBytes,
                                       &header);
    RpcRequest request;
    Status frame_ok = decoded;
    if (decoded.ok()) {
      if (header.type != FrameType::kRequest) {
        frame_ok = Status::InvalidArgument("expected a request frame");
      } else {
        payload.resize(header.payload_size);
        read = connection->ReadAll(payload.data(), payload.size());
        if (!read.ok()) return;
        frames_received_.fetch_add(1, std::memory_order_relaxed);
        frame_ok = VerifyPayload(header, payload.data(), payload.size());
        if (frame_ok.ok()) {
          frame_ok =
              DecodeRequestPayload(payload.data(), payload.size(), &request);
        }
      }
    }

    if (!frame_ok.ok()) {
      // Malformed frame: best-effort error response (the peer may be a
      // buggy client rather than garbage traffic), then close — the byte
      // stream can no longer be trusted to be frame-aligned.
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      RpcResponse error;
      error.sequence = request.sequence;  // 0 unless decode got that far
      error.replica = kNoReplica;
      error.code = frame_ok.code();
      error.message = frame_ok.message();
      std::vector<uint8_t> frame = EncodeResponseFrame(error);
      (void)connection->WriteAll(frame.data(), frame.size());
      return;
    }

    RpcResponse response = core_.HandleRequestBlocking(request);
    std::vector<uint8_t> frame = EncodeResponseFrame(response);
    // Counted before the write: a client that has *observed* the response
    // must find it in stats(), and WriteAll publishes bytes to the peer
    // before it returns here. A failed write undoes the count.
    responses_sent_.fetch_add(1, std::memory_order_relaxed);
    Status written = connection->WriteAll(frame.data(), frame.size());
    if (!written.ok()) {
      responses_sent_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
  }
}

ServerStats RpcServer::stats() const {
  ServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.responses_sent = responses_sent_.load(std::memory_order_relaxed);
  s.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  core_.FillStats(&s);
  return s;
}

std::string ServerStats::ToString() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "connections %lld  frames %lld  responses %lld  "
                "decode errors %lld\n",
                static_cast<long long>(connections_accepted),
                static_cast<long long>(frames_received),
                static_cast<long long>(responses_sent),
                static_cast<long long>(decode_errors));
  out += line;
  std::snprintf(line, sizeof(line),
                "shed %lld  unroutable %lld  failover retries %lld\n",
                static_cast<long long>(shed),
                static_cast<long long>(unroutable),
                static_cast<long long>(failover_retries));
  out += line;
  for (size_t r = 0; r < per_replica_ok.size(); ++r) {
    std::snprintf(line, sizeof(line), "replica %zu: ok %lld  failed %lld\n",
                  r, static_cast<long long>(per_replica_ok[r]),
                  static_cast<long long>(per_replica_failed[r]));
    out += line;
  }
  return out;
}

}  // namespace basm::net
