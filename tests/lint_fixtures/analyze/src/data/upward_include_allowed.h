// Fixture: the same upward edge as upward_include.h, silenced by an
// inline allow marker — must produce zero surviving findings.
#include "common/status.h"
#include "runtime/serving_engine.h"  // basm-analyze: allow(include-layering)

inline int FixtureUpwardAllowed() { return 0; }
