#ifndef BASM_TOOLS_ANALYZE_MODEL_H_
#define BASM_TOOLS_ANALYZE_MODEL_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/analyze/scanner.h"

namespace basm::analyze {

/// Cross-file program model assembled from per-file scans: class member
/// tables, the method index, and lock ownership. Shared by the lock-order
/// and blocking-call passes.
class ProgramModel {
 public:
  explicit ProgramModel(const std::vector<FileScan>& files);

  /// All scanned method bodies under the key `Class::Name` (free functions
  /// key as `::Name`). Multiple definitions (overloads, template headers
  /// seen from several TUs) all appear.
  const std::map<std::string, std::vector<const FunctionScan*>>& methods()
      const {
    return methods_;
  }

  /// The lock node a `MutexLock` expression resolves to, e.g. expr
  /// `shard.mu` inside a `FeatureStore` method -> `FeatureStore::Shard::mu`.
  /// Resolution prefers the enclosing class, then its nested classes, then a
  /// unique global owner; unresolvable exprs degrade to `cls::leaf`.
  std::string LockNode(const std::string& cls, const std::string& expr) const;

  /// Resolves a call site to a method key, or "" when the receiver cannot
  /// be typed (conservative: unresolved calls add no lock edges).
  /// Resolution order: same-class call, receiver naming a known class
  /// (static-style `Status::Ok`), then a member of the caller's class whose
  /// declared type mentions a known class.
  std::string ResolveCallee(const std::string& caller_cls,
                            const Call& call) const;

  /// Every lock node each method acquires, directly or through resolvable
  /// callees (fixed point over the scanned call graph).
  const std::map<std::string, std::set<std::string>>& acquires() const {
    return acquires_;
  }

  /// True when `name` names a scanned class (simple, unqualified).
  bool IsClass(const std::string& name) const {
    return class_members_.count(name) > 0;
  }

 private:
  // simple class name -> member name -> declared type text
  std::map<std::string, std::map<std::string, std::string>> class_members_;
  // simple class name -> lock member names
  std::map<std::string, std::set<std::string>> class_locks_;
  // qualified class names that declare each lock leaf name
  std::map<std::string, std::set<std::string>> lock_leaf_owners_;
  std::map<std::string, std::vector<const FunctionScan*>> methods_;
  std::map<std::string, std::set<std::string>> acquires_;
};

}  // namespace basm::analyze

#endif  // BASM_TOOLS_ANALYZE_MODEL_H_
