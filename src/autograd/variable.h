#ifndef BASM_AUTOGRAD_VARIABLE_H_
#define BASM_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace basm::autograd {

/// One node in the dynamically-built computation graph. Users interact with
/// Variable; Node is an implementation detail shared between ops.cc and the
/// backward pass.
class Node {
 public:
  Tensor value;
  /// Lazily allocated gradient of the same shape as `value`.
  Tensor grad;
  bool requires_grad = false;
  /// Parents in the forward graph (inputs of the op that produced `value`).
  std::vector<std::shared_ptr<Node>> parents;
  /// Propagates this node's grad into the parents' grads. Null for leaves.
  std::function<void(Node&)> backward_fn;

  /// Allocates `grad` (zero-filled) on first use.
  void EnsureGrad() {
    if (grad.numel() != value.numel()) {
      grad = Tensor(value.shape());
    }
  }
};

/// Handle to a graph node. Cheap to copy; graphs are built per forward pass
/// and freed when the last handle to the root goes away. Parameters are
/// long-lived leaf Variables whose gradients accumulate across a step until
/// the optimizer zeroes them.
class Variable {
 public:
  Variable() = default;
  explicit Variable(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  /// A leaf that participates in training (gradient is accumulated).
  static Variable Leaf(Tensor value, bool requires_grad);
  /// A non-trainable input (labels, masks, raw features).
  static Variable Constant(Tensor value) {
    return Leaf(std::move(value), false);
  }

  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const;
  /// Mutable access for optimizer updates; only valid on leaves.
  Tensor& mutable_value();
  /// Gradient tensor (allocated on demand).
  Tensor& grad();
  const Tensor& grad() const;

  bool requires_grad() const;
  void ZeroGrad();

  const std::vector<int64_t>& shape() const { return value().shape(); }
  int64_t numel() const { return value().numel(); }

  std::shared_ptr<Node> node() const { return node_; }

 private:
  std::shared_ptr<Node> node_;
};

/// Thread-local inference switch. While a NoGradGuard is alive on a thread,
/// ops built on that thread produce detached nodes: no parent edges, no
/// backward_fn. Intermediate tensors are then freed as soon as the last op
/// consuming them finishes, which keeps the working set cache-sized for
/// large serving batches and skips per-op closure allocations. Forward
/// values are bit-identical with and without the guard; Backward() through a
/// graph built under the guard stops at the detached nodes.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// True unless a NoGradGuard is alive on the calling thread.
bool GradEnabled();

/// Total bytes held by the value (and, when allocated, gradient) tensors of
/// every node reachable from `root`. Used by the efficiency profiler to
/// estimate per-step activation memory (Table VI of the paper).
int64_t GraphTensorBytes(const Variable& root);

/// Number of nodes reachable from `root` (graph-size introspection).
int64_t GraphNodeCount(const Variable& root);

/// Runs reverse-mode accumulation from `root`, which must be a scalar
/// (numel == 1) unless `seed` is supplied with a matching shape.
void Backward(const Variable& root);
void Backward(const Variable& root, const Tensor& seed);

}  // namespace basm::autograd

#endif  // BASM_AUTOGRAD_VARIABLE_H_
